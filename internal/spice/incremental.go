package spice

import (
	"runtime"
	"sync"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Incremental is the incremental, parallel form of the transient evaluator.
// It keeps an analysis.IncrementalNet on the tree plus a per-(corner, edge)
// cache of stage simulation results, so evaluating the network after a
// candidate move re-simulates only the dirty cone: the stages the move
// touched and everything downstream of them (whose input waveforms shift).
//
// A cached stage transient is reused when (a) the stage's content signature
// matches — same driver parameters and RC arrays, as hashed by the
// extractor — and (b) the stage sees the same input waveform it was
// simulated with, either because the whole upstream chain was reused or by
// direct sample comparison against the recorded input. Two generations of
// results are kept per stage, which makes the cascade's characteristic
// apply-evaluate-revert patterns (model probes, rejected IVC rounds) cheap:
// the revert's evaluation finds the pre-mutation generation and promotes
// it instead of re-integrating the cone.
//
// Independent stage simulations — across sibling subtrees, the rising and
// falling launch edges, and supply corners — run on a bounded worker pool
// (Parallelism goroutines, following the synthesis service's fixed-pool
// pattern). Because each stage simulation is deterministic and stages only
// depend on their upstream chain, results are bit-identical to the serial
// whole-tree Engine at any parallelism level.
//
// An Incremental is not safe for concurrent Evaluate calls; the
// parallelism is internal. Engine knobs (Dt, MaxSeg, SourceSlew, SettleTol)
// must not change between evaluations — call Reset after retuning them.
type Incremental struct {
	// Eng supplies the simulation parameters and accumulates the Runs
	// counter, exactly as if it had evaluated the network itself.
	Eng *Engine
	// Parallelism bounds concurrent stage simulations (1 = serial).
	Parallelism int

	tree     *ctree.Tree
	inc      *analysis.IncrementalNet
	launches map[launchKey]map[int][]*stageEntry

	// Stats counts evaluator work across the evaluator's lifetime.
	Stats IncrementalStats
}

// IncrementalStats counts incremental-evaluator work.
type IncrementalStats struct {
	Evals      int // corner evaluations performed
	StagesSim  int // stage transients actually integrated
	StagesHit  int // stage transients served from the cache
	FullStages int // stage count at the last evaluation (cone-size context)
}

// launchKey identifies one cached launch: a supply corner and the direction
// of the source transition.
type launchKey struct {
	corner tech.Corner
	rising bool
}

// stageEntry caches one stage transient for one launch: the stage content
// it was integrated for, the input waveform it was driven with (nil for the
// source stage, whose ramp is deterministic), and the measurements.
type stageEntry struct {
	sig   uint64
	input *Waveform
	res   stageResult
}

// NewIncremental creates an incremental evaluator over eng's parameters for
// tr. A nil eng gets production defaults (New). parallelism <= 0 selects
// GOMAXPROCS workers.
func NewIncremental(tr *ctree.Tree, eng *Engine, parallelism int) *Incremental {
	if eng == nil {
		eng = New()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	ie := &Incremental{Eng: eng, Parallelism: parallelism}
	ie.bind(tr)
	return ie
}

// Name implements analysis.Evaluator.
func (ie *Incremental) Name() string { return "transient-incremental" }

func (ie *Incremental) bind(tr *ctree.Tree) {
	if ie.inc != nil && ie.tree == tr {
		return
	}
	ie.tree = tr
	ie.inc = analysis.NewIncrementalNet(tr, ie.Eng.MaxSeg)
	ie.launches = make(map[launchKey]map[int][]*stageEntry)
}

// SetParallelism adjusts the stage-simulation worker budget (values < 1
// select serial). Safe between evaluations; results never depend on it.
// opt.Context applies its configured Parallelism through this method.
func (ie *Incremental) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	ie.Parallelism = n
}

// BatchHint reports the corner granularity that keeps the launch worker
// pool occupied: each corner contributes two launches (rising and falling
// edges), so a multiple of ceil(Parallelism/2) corners fills every worker.
// The sweep splitter aligns its chunk size to this.
func (ie *Incremental) BatchHint() int {
	h := (ie.Parallelism + 1) / 2
	if h < 1 {
		h = 1
	}
	return h
}

// Reset drops every cached stage result and the cached extraction. Call it
// after changing Eng's integration parameters.
func (ie *Incremental) Reset() {
	tr := ie.tree
	ie.inc = nil
	ie.bind(tr)
}

// Net returns the extractor's current staged netlist view (syncing it with
// the tree first).
func (ie *Incremental) Net() *analysis.Net {
	return ie.inc.Sync()
}

// Evaluate implements analysis.Evaluator with per-stage caching and
// parallel dirty-cone simulation.
func (ie *Incremental) Evaluate(tr *ctree.Tree, corner tech.Corner) (*analysis.Result, error) {
	rs, err := ie.EvaluateCorners(tr, []tech.Corner{corner})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// EvaluateCorners implements analysis.CornerEvaluator: one extractor sync,
// then every (corner, edge) launch scheduled over the shared worker pool.
func (ie *Incremental) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*analysis.Result, error) {
	ie.bind(tr)
	net := ie.inc.Sync()
	ie.Stats.FullStages = len(net.Stages)

	type task struct {
		corner tech.Corner
		rising bool
	}
	tasks := make([]task, 0, 2*len(corners))
	for _, c := range corners {
		tasks = append(tasks, task{c, true}, task{c, false})
	}
	outs := make([]launchOutcome, len(tasks))
	sem := make(chan struct{}, ie.Parallelism)
	if ie.Parallelism <= 1 {
		for ti, t := range tasks {
			outs[ti] = ie.launch(net, t.corner, t.rising, sem)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(tasks))
		for ti := range tasks {
			go func(ti int) {
				defer wg.Done()
				outs[ti] = ie.launch(net, tasks[ti].corner, tasks[ti].rising, sem)
			}(ti)
		}
		wg.Wait()
	}

	// Commit caches and stats, then merge the two edges of each corner in
	// the same deterministic order as Engine.Evaluate.
	results := make([]*analysis.Result, len(corners))
	ti := 0
	for ci, c := range corners {
		res := &analysis.Result{
			Corner:    c,
			Rise:      make(map[int]float64),
			Fall:      make(map[int]float64),
			SinkSlew:  make(map[int]float64),
			StageSlew: make(map[int]float64),
		}
		worstSlew := -1.0
		for _, rising := range []bool{true, false} {
			out := &outs[ti]
			ti++
			ie.launches[launchKey{c, rising}] = out.entries
			ie.Stats.StagesSim += out.simulated
			ie.Stats.StagesHit += out.reusedCount
			lr := out.lr
			if lr.maxSlew > worstSlew {
				worstSlew = lr.maxSlew
				ie.Eng.LastWorstSlewDriver = lr.worstDriver
			}
			for id, t := range lr.sinkT50 {
				if rising {
					res.Rise[id] = t
				} else {
					res.Fall[id] = t
				}
			}
			for id, s := range lr.sinkSlew {
				if old, ok := res.SinkSlew[id]; !ok || s > old {
					res.SinkSlew[id] = s
				}
			}
			for id, s := range lr.stageSlew {
				if old, ok := res.StageSlew[id]; !ok || s > old {
					res.StageSlew[id] = s
				}
			}
			if lr.maxSlew > res.MaxSlew {
				res.MaxSlew = lr.maxSlew
			}
			res.SlewViol += lr.viol
		}
		ie.Eng.Runs++
		ie.Stats.Evals++
		results[ci] = res
	}
	return results, nil
}

// launchOutcome is one launch's aggregated measurements plus the cache
// entries to commit for it.
type launchOutcome struct {
	lr          launchResult
	entries     map[int][]*stageEntry
	simulated   int
	reusedCount int
}

// launch evaluates one (corner, edge) pair over the staged netlist. It only
// reads shared evaluator state (the previous cache generation); the caller
// commits the returned entries after all launches finish.
func (ie *Incremental) launch(net *analysis.Net, corner tech.Corner, rising bool, sem chan struct{}) launchOutcome {
	e := ie.Eng
	tk := net.Tree.Tech
	vdd := corner.Vdd
	n := len(net.Stages)
	prev := ie.launches[launchKey{corner, rising}]

	ls := getLaunchScratch(n)
	defer launchPool.Put(ls)
	results := ls.results // nil = no input transition reached it
	inputs := ls.inputs
	// reusedHead[i]: stage i was served from the previous launch's newest
	// entry — its output is identical to the last evaluation's, so children
	// may accept their own newest entry without comparing waveforms.
	reusedHead := ls.reusedHead

	// Output-edge direction per stage (the source driver is non-inverting,
	// every buffer stage inverts) and dependency levels for scheduling.
	dirs := ls.dirs
	level := ls.level
	maxLevel := 0
	for i, s := range net.Stages {
		if s.Parent < 0 {
			dirs[i] = rising
			continue
		}
		dirs[i] = !dirs[s.Parent]
		level[i] = level[s.Parent] + 1
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}

	out := launchOutcome{entries: make(map[int][]*stageEntry, n)}
	chosen := ls.chosen // cache entry serving/recording stage i

	// Level by level: decide cache hit or simulate; stages within a level
	// are independent, so the misses integrate concurrently on the pool.
	for lv := 0; lv <= maxLevel; lv++ {
		work := ls.work[:0]
		for i, s := range net.Stages {
			if level[i] != lv {
				continue
			}
			var vin *Waveform
			if s.Parent >= 0 {
				pr := results[s.Parent]
				if pr == nil {
					continue // upstream never switched; neither do we
				}
				w, ok := pr.loadWaves[s.InputNode]
				if !ok {
					continue
				}
				vin = w.TrimInto(0.002*vdd, &ls.trim[i])
			}
			inputs[i] = vin
			if ent := matchEntry(prev[stageCacheKey(s)], s.Sig(), vin,
				s.Parent < 0 || reusedHead[s.Parent]); ent != nil {
				results[i] = &ent.res
				chosen[i] = ent
				reusedHead[i] = len(prev[stageCacheKey(s)]) > 0 && prev[stageCacheKey(s)][0] == ent
				out.reusedCount++
				continue
			}
			if vin == &ls.trim[i] {
				// Cache miss: the input enters a long-lived cache entry, so
				// promote the scratch header to its own allocation (samples
				// stay shared with the upstream waveform, as Trim shares
				// them).
				c := *vin
				inputs[i] = &c
			}
			work = append(work, i)
		}
		runLimited(sem, len(work), func(wi int) {
			i := work[wi]
			s := net.Stages[i]
			vin := inputs[i]
			if s.Parent < 0 {
				if rising {
					vin = Ramp(0, vdd, e.SourceSlew, e.Dt)
				} else {
					vin = Ramp(vdd, 0, e.SourceSlew, e.Dt)
				}
			}
			rd := net.DriverR(s, corner)
			var drv driver
			if s.Driver == nil {
				drv = resistorDriver{r: rd}
			} else {
				drv = inverterDriver{k: tk.KDrive(*s.Driver.Buf), vdd: vdd, vt: tk.Vt}
			}
			st := e.simStage(s, drv, vin, dirs[i], corner, rd)
			results[i] = &st
		})
		for _, i := range work {
			s := net.Stages[i]
			chosen[i] = &stageEntry{sig: s.Sig(), input: inputs[i], res: *results[i]}
			out.simulated++
		}
		ls.work = work // keep any growth for the next level
	}

	// Commit policy: newest entry first, plus the most recent distinct
	// predecessor — two generations, enough to recover the pre-mutation
	// state when a probe or a rejected round is reverted.
	for i, s := range net.Stages {
		key := stageCacheKey(s)
		if chosen[i] == nil {
			if old := prev[key]; old != nil {
				out.entries[key] = old
			}
			continue
		}
		if old := prev[key]; len(old) > 0 && old[0] == chosen[i] {
			// Steady-state cache hit on the newest entry: the committed
			// list is identical to the previous generation's (same head,
			// same ≤1 distinct predecessor), so reuse it instead of
			// allocating a copy per stage per launch.
			out.entries[key] = old
			continue
		}
		lst := append(make([]*stageEntry, 0, 2), chosen[i])
		for _, ent := range prev[key] {
			if ent != chosen[i] && len(lst) < 2 {
				lst = append(lst, ent)
			}
		}
		out.entries[key] = lst
	}

	// Aggregate, walking stages in topological order so ties in the
	// worst-slew tracking break exactly as in the serial engine.
	nSinks := 0
	for i := range net.Stages {
		nSinks += len(net.Stages[i].Sinks)
	}
	lr := launchResult{
		sinkT50:     make(map[int]float64, nSinks),
		sinkSlew:    make(map[int]float64, nSinks),
		stageSlew:   make(map[int]float64, n),
		worstDriver: -1,
	}
	srcT50 := e.SourceSlew / 2
	for i, s := range net.Stages {
		st := results[i]
		if st == nil {
			continue
		}
		for _, m := range s.Sinks {
			lr.sinkT50[m.Sink.ID] = st.t50[m.Node] - srcT50
			lr.sinkSlew[m.Sink.ID] = st.slew[m.Node]
		}
		key := -1
		if s.Driver != nil {
			key = s.Driver.ID
		}
		for j := range st.slew {
			if st.slew[j] > lr.maxSlew {
				lr.maxSlew = st.slew[j]
				lr.worstDriver = key
			}
			if st.slew[j] > lr.stageSlew[key] {
				lr.stageSlew[key] = st.slew[j]
			}
			if st.slew[j] > tk.SlewLimit {
				lr.viol++
			}
		}
	}
	out.lr = lr
	return out
}

// matchEntry finds a cached transient valid for a stage with the given
// content signature and input waveform. headFast short-circuits the sample
// comparison for the newest entry when the upstream chain is known
// unchanged (source stages, or a parent served from its own newest entry).
func matchEntry(entries []*stageEntry, sig uint64, vin *Waveform, headFast bool) *stageEntry {
	if sig == 0 {
		return nil // unsigned stages never match
	}
	for gi, ent := range entries {
		if ent.sig != sig {
			continue
		}
		if vin == nil { // source stage: deterministic ramp
			return ent
		}
		if headFast && gi == 0 {
			return ent
		}
		if waveEqual(vin, ent.input) {
			return ent
		}
	}
	return nil
}

// waveEqual reports exact sample-level equality of two waveforms.
func waveEqual(a, b *Waveform) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.T0 != b.T0 || a.Dt != b.Dt || a.V0 != b.V0 || len(a.V) != len(b.V) {
		return false
	}
	for i := range a.V {
		if a.V[i] != b.V[i] {
			return false
		}
	}
	return true
}

// stageCacheKey mirrors the extractor's driver keying (-1 = source stage).
func stageCacheKey(s *analysis.Stage) int {
	if s.Driver == nil {
		return -1
	}
	return s.Driver.ID
}

var _ analysis.CornerEvaluator = (*Incremental)(nil)
