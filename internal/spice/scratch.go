package spice

import "sync"

// Scratch pools for the two allocation hot spots of the transient path:
// the per-stage integration state of simStage and the per-launch slices of
// Incremental.launch. Both are flat arrays sized by the stage/netlist at
// hand; pooling them removes the dominant share of the evaluator's
// allocations (the profile attributed ~46% of allocated objects to
// simStage's make calls alone). Buffers that the legacy code relied on
// make() zero-initializing are re-zeroed explicitly by the users, so
// results stay bit-identical.

type stageScratch struct {
	g, gC, d, elim, V, b, acc []float64
	lo, mid, hi               []crossing
}

var stagePool = sync.Pool{New: func() any { return new(stageScratch) }}

// grow resizes every vector to n RC nodes without zeroing; simStage fully
// overwrites them (and explicitly clears the accumulators that need it).
func (ss *stageScratch) grow(n int) {
	ss.g = growF(ss.g, n)
	ss.gC = growF(ss.gC, n)
	ss.d = growF(ss.d, n)
	ss.elim = growF(ss.elim, n)
	ss.V = growF(ss.V, n)
	ss.b = growF(ss.b, n)
	ss.acc = growF(ss.acc, n)
	ss.lo = growC(ss.lo, n)
	ss.mid = growC(ss.mid, n)
	ss.hi = growC(ss.hi, n)
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growC(buf []crossing, n int) []crossing {
	if cap(buf) < n {
		return make([]crossing, n)
	}
	return buf[:n]
}

// launchScratch holds Incremental.launch's per-netlist working slices.
// Entries are cleared on checkout (stages skipped by the dirty-cone walk
// must read zero values, exactly as freshly made slices would give).
type launchScratch struct {
	results    []*stageResult
	inputs     []*Waveform
	reusedHead []bool
	dirs       []bool
	level      []int
	work       []int
	chosen     []*stageEntry
	// trim holds per-stage trimmed-input headers (TrimInto targets). A
	// header is cloned to the heap before it enters a cache entry, so
	// nothing outlives the launch that wrote it.
	trim []Waveform
}

var launchPool = sync.Pool{New: func() any { return new(launchScratch) }}

func getLaunchScratch(n int) *launchScratch {
	ls := launchPool.Get().(*launchScratch)
	if cap(ls.results) < n {
		ls.results = make([]*stageResult, n)
		ls.inputs = make([]*Waveform, n)
		ls.reusedHead = make([]bool, n)
		ls.dirs = make([]bool, n)
		ls.level = make([]int, n)
		ls.chosen = make([]*stageEntry, n)
		ls.trim = make([]Waveform, n)
	} else {
		ls.results = ls.results[:n]
		ls.inputs = ls.inputs[:n]
		ls.reusedHead = ls.reusedHead[:n]
		ls.dirs = ls.dirs[:n]
		ls.level = ls.level[:n]
		ls.chosen = ls.chosen[:n]
		ls.trim = ls.trim[:n]
	}
	for i := 0; i < n; i++ {
		ls.results[i] = nil
		ls.inputs[i] = nil
		ls.reusedHead[i] = false
		ls.level[i] = 0
		ls.chosen[i] = nil
	}
	ls.work = ls.work[:0]
	return ls
}
