package spice

import (
	"math"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

func TestWaveformAtAndTrim(t *testing.T) {
	w := &Waveform{T0: 10, Dt: 1, V: []float64{0, 0, 0.5, 1, 1}, V0: 0}
	if w.At(5) != 0 {
		t.Error("before T0 should be V0")
	}
	if got := w.At(12.5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("At(12.5)=%v want 0.75", got)
	}
	if w.At(100) != 1 {
		t.Error("past end should hold last sample")
	}
	if w.End() != 14 {
		t.Errorf("End=%v want 14", w.End())
	}
	tr := w.Trim(0.01)
	if tr.T0 != 11 {
		t.Errorf("Trim T0=%v want 11 (one quiet sample kept)", tr.T0)
	}
	if tr.At(12.5) != w.At(12.5) {
		t.Error("Trim must not change interpolated values")
	}
}

func TestRamp(t *testing.T) {
	w := Ramp(0, 1.2, 20, 1)
	if w.At(0) != 0 || math.Abs(w.At(10)-0.6) > 1e-9 || math.Abs(w.At(50)-1.2) > 1e-9 {
		t.Errorf("ramp values wrong: %v %v %v", w.At(0), w.At(10), w.At(50))
	}
	down := Ramp(1.2, 0, 20, 1)
	if math.Abs(down.At(10)-0.6) > 1e-9 {
		t.Errorf("falling ramp mid=%v", down.At(10))
	}
}

func TestCrossingTracker(t *testing.T) {
	c := crossing{th: 0.5, rising: true}
	c.observe(1, 1, 0.0, 0.4)
	if c.done {
		t.Fatal("no crossing yet")
	}
	c.observe(2, 1, 0.4, 0.6)
	if !c.done || math.Abs(c.t-1.5) > 1e-12 {
		t.Fatalf("crossing at %v want 1.5", c.t)
	}
	f := crossing{th: 0.5, rising: false}
	f.observe(1, 1, 1.0, 0.25)
	if !f.done || math.Abs(f.t-(1-1+0.5/0.75)) > 1e-9 {
		t.Fatalf("falling crossing at %v", f.t)
	}
}

// lumpedRC builds source(R=1kΩ) -> tiny wire -> sink(C). Using a very short
// wire makes the analytic single-pole model accurate.
func lumpedRC(tk *tech.Tech, r, c float64) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 0), r)
	tr.AddSink(tr.Root, geom.Pt(1, 0), c, "s")
	return tr
}

func TestStepResponseMatchesAnalyticRC(t *testing.T) {
	tk := tech.Default45()
	r, c := 0.5, 200.0 // tau = 100 ps
	tr := lumpedRC(tk, r, c)
	e := New()
	e.SourceSlew = 0.1 // near-ideal step
	res, err := e.Evaluate(tr, tk.Reference())
	if err != nil {
		t.Fatal(err)
	}
	sink := tr.Sinks()[0].ID
	tau := r * (c + tk.Wires[0].CPerUm*1) // include the 1 µm wire cap
	wantT50 := tau * math.Ln2
	wantSlew := tau * math.Log(9)
	if got := res.Rise[sink]; math.Abs(got-wantT50)/wantT50 > 0.03 {
		t.Errorf("t50=%v want %v (3%%)", got, wantT50)
	}
	if got := res.SinkSlew[sink]; math.Abs(got-wantSlew)/wantSlew > 0.03 {
		t.Errorf("slew=%v want %v (3%%)", got, wantSlew)
	}
	// Rising and falling launches are symmetric for a linear network.
	if math.Abs(res.Rise[sink]-res.Fall[sink]) > 0.5 {
		t.Errorf("rise/fall asymmetry on linear net: %v vs %v", res.Rise[sink], res.Fall[sink])
	}
}

func TestTimestepConvergence(t *testing.T) {
	tk := tech.Default45()
	tr := lumpedRC(tk, 0.5, 200)
	sink := tr.Sinks()[0].ID
	e1 := New()
	e1.Dt = 2
	r1, _ := e1.Evaluate(tr, tk.Reference())
	e2 := New()
	e2.Dt = 0.5
	r2, _ := e2.Evaluate(tr, tk.Reference())
	if math.Abs(r1.Rise[sink]-r2.Rise[sink]) > 0.02*r2.Rise[sink] {
		t.Errorf("timestep sensitivity too high: dt=2 -> %v, dt=0.5 -> %v", r1.Rise[sink], r2.Rise[sink])
	}
}

func TestInverterChainPolarityAndDelay(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(3000, 0), 35, "s")
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b1 := tr.InsertOnEdge(s, 1000, ctree.Buffer)
	b1.Buf = &comp
	b2 := tr.InsertOnEdge(s, 1000, ctree.Buffer) // now between b1 and s
	b2.Buf = &comp
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	e := New()
	res, err := e.Evaluate(tr, tk.Reference())
	if err != nil {
		t.Fatal(err)
	}
	lat := res.Rise[s.ID]
	if math.IsInf(lat, 1) || lat <= 0 {
		t.Fatalf("latency=%v", lat)
	}
	// Sanity: latency should be within a factor of three of the Elmore sum.
	el, _ := (&analysis.Elmore{}).Evaluate(tr, tk.Reference())
	if lat > 3*el.Rise[s.ID] || lat < el.Rise[s.ID]/3 {
		t.Errorf("transient %v vs elmore %v out of band", lat, el.Rise[s.ID])
	}
	if e.Runs != 1 {
		t.Errorf("Runs=%d want 1", e.Runs)
	}
}

func TestSymmetricTreeZeroSkew(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s1 := tr.AddSink(tr.Root, geom.Pt(1500, 1000), 35, "a")
	s2 := tr.AddSink(tr.Root, geom.Pt(1500, -1000), 35, "b")
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	for _, s := range []*ctree.Node{s1, s2} {
		b := tr.InsertOnEdge(s, 1200, ctree.Buffer)
		b.Buf = &comp
	}
	e := New()
	res, err := e.Evaluate(tr, tk.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if sk := res.Skew(); sk > 0.1 {
		t.Errorf("symmetric tree skew=%v ps, want < 0.1", sk)
	}
}

func TestLowVddSlower(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b := tr.InsertOnEdge(s, 1000, ctree.Buffer)
	b.Buf = &comp
	e := New()
	fast, _ := e.Evaluate(tr, tk.Reference())
	slow, _ := e.Evaluate(tr, tk.Worst())
	if slow.Rise[s.ID] <= fast.Rise[s.ID] {
		t.Errorf("1.0V (%v) must be slower than 1.2V (%v)", slow.Rise[s.ID], fast.Rise[s.ID])
	}
	if e.Runs != 2 {
		t.Errorf("Runs=%d want 2", e.Runs)
	}
}

func TestStrongerBufferFaster(t *testing.T) {
	tk := tech.Default45()
	mk := func(n int) (float64, float64) {
		tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
		s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
		comp := tech.Composite{Type: tk.Inverters[1], N: n}
		b := tr.InsertOnEdge(s, 1000, ctree.Buffer)
		b.Buf = &comp
		e := New()
		res, _ := e.Evaluate(tr, tk.Reference())
		return res.Rise[s.ID], res.SinkSlew[s.ID]
	}
	lat8, slew8 := mk(8)
	lat2, slew2 := mk(2)
	if lat8 >= lat2 {
		t.Errorf("8x (%v) should beat 2x (%v)", lat8, lat2)
	}
	if slew8 >= slew2 {
		t.Errorf("8x slew (%v) should beat 2x slew (%v)", slew8, slew2)
	}
}

func TestSlewToDelayCoupling(t *testing.T) {
	// A slower input ramp must increase downstream latency — the effect the
	// paper says Elmore-like models miss.
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b := tr.InsertOnEdge(s, 1000, ctree.Buffer)
	b.Buf = &comp
	eFast := New()
	eFast.SourceSlew = 10
	rFast, _ := eFast.Evaluate(tr, tk.Reference())
	eSlow := New()
	eSlow.SourceSlew = 80
	rSlow, _ := eSlow.Evaluate(tr, tk.Reference())
	// Latencies are measured from the source 50% point, so pure Elmore
	// would predict no difference; the nonlinear driver sees the slow ramp.
	if rSlow.Rise[s.ID] <= rFast.Rise[s.ID] {
		t.Errorf("slow input slew should add delay: %v vs %v", rSlow.Rise[s.ID], rFast.Rise[s.ID])
	}
}

func TestSlewViolationDetected(t *testing.T) {
	tk := tech.Default45()
	// 6 mm unbuffered from a weak source: hopeless slew.
	tr := ctree.New(tk, geom.Pt(0, 0), 0.8)
	tr.AddSink(tr.Root, geom.Pt(6000, 0), 35, "far")
	e := New()
	res, err := e.Evaluate(tr, tk.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if res.SlewViol == 0 {
		t.Errorf("expected slew violations, max slew %v", res.MaxSlew)
	}
	if res.MaxSlew <= tk.SlewLimit {
		t.Errorf("max slew %v should exceed limit %v", res.MaxSlew, tk.SlewLimit)
	}
}

func TestResistiveShielding(t *testing.T) {
	// A near sink behind a long resistive branch: Elmore lumps the far
	// branch fully, the transient sees shielding, so transient < Elmore at
	// the near sink. This is the qualitative gap the paper exploits.
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.2)
	mid := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(200, 0))
	near := tr.AddSink(mid, geom.Pt(250, 0), 20, "near")
	far := tr.AddSink(mid, geom.Pt(3200, 0), 20, "far")
	far.WidthIdx = tk.Narrow()
	e := New()
	res, _ := e.Evaluate(tr, tk.Reference())
	el, _ := (&analysis.Elmore{}).Evaluate(tr, tk.Reference())
	if res.Rise[near.ID] >= el.Rise[near.ID] {
		t.Errorf("near sink: transient %v should beat Elmore %v (shielding)",
			res.Rise[near.ID], el.Rise[near.ID])
	}
}

func TestMosfetModel(t *testing.T) {
	k := 10.0
	if i, g := mosfet(k, -0.1, 0.5); i != 0 || g != 0 {
		t.Error("cut-off device must not conduct")
	}
	// Triode: small vds.
	i1, g1 := mosfet(k, 1.0, 0.01)
	if i1 <= 0 || g1 <= 0 {
		t.Error("triode region broken")
	}
	// Saturation: vds > vov.
	iSat, gSat := mosfet(k, 1.0, 2.0)
	if math.Abs(iSat-k) > 1e-12 || gSat != 0 {
		t.Errorf("saturation current %v want %v, g=%v", iSat, k, gSat)
	}
	// Continuity at vds = vov.
	iTri, _ := mosfet(k, 1.0, 1.0)
	if math.Abs(iTri-iSat) > 1e-9 {
		t.Errorf("discontinuous at pinch-off: %v vs %v", iTri, iSat)
	}
}

func TestSolveRootLinear(t *testing.T) {
	// With a resistor driver the root equation is linear; Newton must land
	// exactly: d0·v - b0 = (vin - v)/r.
	d0, b0, vin, r := 2.0, 1.0, 1.2, 0.5
	v := solveRoot(resistorDriver{r: r}, vin, d0, b0, 0, 1.2)
	want := (b0 + vin/r) / (d0 + 1/r)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("v=%v want %v", v, want)
	}
}

func TestEvaluateAllCorners(t *testing.T) {
	tk := tech.Default45()
	tr := lumpedRC(tk, 0.3, 100)
	e := New()
	results, err := e.EvaluateAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tk.Corners) {
		t.Fatalf("results=%d want %d", len(results), len(tk.Corners))
	}
	if e.Runs != len(tk.Corners) {
		t.Errorf("Runs=%d want %d", e.Runs, len(tk.Corners))
	}
}
