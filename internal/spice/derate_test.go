package spice

import (
	"math/rand"
	"reflect"
	"testing"

	"contango/internal/corners"
	"contango/internal/tech"
)

// TestIncrementalMatchesSerialUnderCornerSet: the incremental cached
// evaluator must stay bit-identical to the serial whole-tree engine when
// the technology carries a derated multi-corner set (pvt5) — including
// across mutation rounds, where derated stage transients are served from
// the per-(corner,edge) cache.
func TestIncrementalMatchesSerialUnderCornerSet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := tech.Default45()
	set, err := corners.Build("pvt5", base)
	if err != nil {
		t.Fatal(err)
	}
	tk := set.Apply(base)
	tr := randomStagedTree(rng, tk)

	ie := NewIncremental(tr, New(), 2)
	serialEng := New()
	for round := 0; round < 4; round++ {
		if round > 0 {
			randomMove(rng, tr)
		}
		inc, err := ie.EvaluateCorners(tr, tk.Corners)
		if err != nil {
			t.Fatal(err)
		}
		for ci, c := range tk.Corners {
			want, err := serialEng.Evaluate(tr, c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inc[ci], want) {
				t.Fatalf("round %d corner %s: incremental diverged from serial", round, c.Name)
			}
		}
	}
	if ie.Stats.StagesHit == 0 {
		t.Error("cache never hit across rounds — derated corners defeated reuse")
	}

	// Derated corners must actually differ from their underated twins:
	// same Vdd, different interconnect.
	ss := tk.Corners[4]
	bare := tech.Corner{Name: ss.Name, Vdd: ss.Vdd}
	a, err := serialEng.Evaluate(tr, ss)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serialEng.Evaluate(tr, bare)
	if err != nil {
		t.Fatal(err)
	}
	slower := 0
	for id, v := range a.Rise {
		if v > b.Rise[id] {
			slower++
		}
	}
	if slower == 0 {
		t.Error("slow-interconnect derates had no effect on the transient engine")
	}
}
