// Package contango is a clock-tree synthesizer for SoCs: a Go reproduction
// of "CONTANGO: Integrated Optimization of SoC Clock Networks" (Dongjin Lee
// and Igor L. Markov, DATE 2010).
//
// The flow builds a zero-skew DME tree over the clock sinks, repairs
// obstacle violations (rerouting and contour detours), inserts composite
// inverters within a capacitance budget, corrects sink polarity with the
// paper's provably-minimal algorithm, and then runs a cascade of
// accurate-simulation-driven optimizations — buffer sizing, wiresizing,
// wiresnaking and bottom-level fine-tuning — until skew and clock latency
// range stop improving.
//
// Quick start:
//
//	b, _ := contango.Benchmark("ispd09f22")
//	res, err := contango.Synthesize(b, contango.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Final) // skew, CLR, latency, slew, capacitance
//
// Batches of runs go through the concurrent synthesis service — a worker
// pool with a content-addressed result cache and in-flight deduplication:
//
//	svc := contango.NewService(contango.ServiceConfig{Workers: 4})
//	defer svc.Close()
//	jobs, _ := svc.SubmitBatch(contango.ISPD09Requests(contango.Options{}))
//	results, err := contango.WaitJobs(context.Background(), jobs)
//
// With ServiceConfig.DataDir set (use OpenService to catch setup errors)
// the service is durable: finished results, job logs and SVG renderings
// persist in a content-addressed on-disk store (internal/store), a job
// journal records every submission, and a restarted service replays it —
// finished jobs become disk-backed cache hits, unfinished ones are
// re-queued and run again. EncodeResult/DecodeResult expose the same
// result serialization for library users managing their own storage.
//
// The same service powers the contangod HTTP server (cmd/contangod).
//
// The library is self-contained: it includes its own technology model
// (tech), RC netlist extraction and closed-form evaluators (analysis), a
// transient circuit simulator standing in for SPICE (spice), synthetic
// reconstructions of the ISPD'09 contest and Texas Instruments benchmark
// suites (bench), and an SVG renderer (viz). See README.md for a
// quickstart covering the library, the CLI and the server.
package contango

import (
	"context"
	"io"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/corners"
	"contango/internal/eval"
	"contango/internal/flow"
	"contango/internal/service"
)

// Options re-exports the flow configuration. The zero value gives the
// paper's contest setup: 45 nm technology, batches of 8 small inverters,
// 10% capacitance reserve, transient-checked optimization rounds — with
// the incremental evaluation engine on and its stage simulations spread
// over all CPUs (Options.Parallelism; Options.FullEval restores the
// whole-tree reference path, identical results, much slower). Options.Plan
// selects the synthesis pipeline: a built-in plan name (PlanNames) or a
// plan-spec string (ValidatePlan documents the grammar). Options.Corners
// selects the PVT corner set (CornerSetNames / ValidateCorners): the
// default "ispd09" pair, the "pvt5" envelope, or "mc:<n>:<seed>" Monte
// Carlo variation samples with yield/quantile reporting.
type Options = core.Options

// StageRecord is one per-stage metric record (a Table III row).
type StageRecord = core.StageRecord

// Result is the outcome of a synthesis run, including the final tree,
// per-stage metric records (the paper's Table III rows) and counters.
type Result = core.Result

// Metrics bundles skew, clock latency range, latency, slew and capacitance.
type Metrics = eval.Metrics

// Benchmark returns a named synthetic benchmark: one of the ISPD'09 suite
// ("ispd09f11" … "ispd09fnb1").
func Benchmark(name string) (*bench.Benchmark, error) { return bench.ISPD09(name) }

// BenchmarkNames lists the ISPD'09-style suite in order.
func BenchmarkNames() []string { return bench.ISPD09Names() }

// ReadBenchmark parses a benchmark from the library's text format.
func ReadBenchmark(r io.Reader) (*bench.Benchmark, error) { return bench.Read(r) }

// WriteBenchmark serializes a benchmark to the library's text format.
func WriteBenchmark(w io.Writer, b *bench.Benchmark) error { return bench.Write(w, b) }

// Synthesize runs the full Contango flow on a benchmark.
func Synthesize(b *bench.Benchmark, o Options) (*Result, error) { return core.Synthesize(b, o) }

// PlanNames lists the built-in synthesis plans: "paper" (the default — the
// paper's exact flow), "fast" (reduced round budgets, no convergence
// cycles), "wire-only", "tune-only", and "no-cycles".
func PlanNames() []string { return flow.PlanNames() }

// ValidatePlan checks a plan name or plan-spec string without running it.
// The spec grammar is a comma-separated pass list, each pass optionally
// carrying a round budget and a gate predicate, with convergence groups:
//
//	zst,legalize,buffer,polarity,tbsz:8,cycle(twsz,twsn,bwsn)x3,bwsn?skew>5
//
// Specs that name no construction pass get the construction prelude
// (zst,legalize,buffer,polarity) prepended, so "tbsz:2,twsz" is a complete
// plan. See the flow package for the full grammar.
func ValidatePlan(nameOrSpec string) error {
	_, err := flow.ResolvePlan(nameOrSpec)
	return err
}

// CornerSetNames lists the built-in PVT corner sets: "ispd09" (the default
// — the technology's native fast/slow pair, bit-identical to the
// pre-corner-set engine) and "pvt5" (a five-corner PVT envelope). Monte
// Carlo sets are spelled as specs: "mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]]"
// draws n deterministic variation samples of (Vdd, R, C).
func CornerSetNames() []string { return corners.Names() }

// ValidateCorners checks a corner-set spec without running it. The empty
// spec is valid and means the default set. Options.Corners selects the
// set for a run; identical specs content-address identically, so Monte
// Carlo runs are reproducible and cacheable.
func ValidateCorners(spec string) error { return corners.Validate(spec) }

// SynthesizeContext runs the full flow honoring ctx: cancellation is
// checked between stages and before every optimization round, so a killed
// run stops consuming simulator invocations promptly.
func SynthesizeContext(ctx context.Context, b *bench.Benchmark, o Options) (*Result, error) {
	return core.SynthesizeContext(ctx, b, o)
}

// Service is the concurrent synthesis service: a worker pool running jobs
// with content-addressed result caching and in-flight deduplication. Use
// its Submit/SubmitBatch methods and the jobs' Wait.
type Service = service.Service

// ServiceConfig tunes a Service (worker-pool size, cache capacity, queue
// depth).
type ServiceConfig = service.Config

// Job is one tracked synthesis run inside a Service.
type Job = service.Job

// SynthesisRequest is one unit of a batch submission.
type SynthesisRequest = service.Request

// ServiceStats is a snapshot of service counters.
type ServiceStats = service.Stats

// NewService starts a synthesis service with the given configuration.
// Close it when done. For configurations with ServiceConfig.DataDir set,
// prefer OpenService: NewService panics if the durable store cannot be
// initialized.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenService starts a synthesis service, surfacing durable-store
// initialization errors (unwritable ServiceConfig.DataDir, …). Stop it
// with Close, or Shutdown for a graceful drain that journals unfinished
// jobs for the next start.
func OpenService(cfg ServiceConfig) (*Service, error) { return service.Open(cfg) }

// EncodeResult serializes a synthesis result in the durable store's
// self-contained format (benchmark, technology, full tree, metric
// history); DecodeResult round-trips it exactly.
func EncodeResult(w io.Writer, res *Result) error { return core.EncodeResult(w, res) }

// DecodeResult parses a result written by EncodeResult, revalidating the
// rebuilt clock tree.
func DecodeResult(r io.Reader) (*Result, error) { return core.DecodeResult(r) }

// ISPD09Requests builds one batch request per ISPD'09 suite benchmark.
func ISPD09Requests(o Options) []SynthesisRequest { return service.ISPD09Requests(o) }

// WaitJobs waits for every job and returns their results in order.
func WaitJobs(ctx context.Context, jobs []*Job) ([]*Result, error) {
	return service.WaitAll(ctx, jobs)
}

// BaselineKind selects a contest-style comparison flow.
type BaselineKind = core.BaselineKind

// Baseline flow kinds (see core documentation).
const (
	BaselineNoOpt  = core.BaselineNoOpt
	BaselineGreedy = core.BaselineGreedy
	BaselineBST    = core.BaselineBST
)

// SynthesizeBaseline runs a one-shot baseline flow (no optimization
// cascade), used for Table IV-style comparisons.
func SynthesizeBaseline(b *bench.Benchmark, kind BaselineKind, o Options) (*Result, error) {
	return core.SynthesizeBaseline(b, kind, o)
}

// RenderSVG writes the result's clock tree as an SVG in the style of the
// paper's Figure 3, with wires colored by slow-down slack.
func RenderSVG(w io.Writer, res *Result) error { return core.RenderSVG(w, res) }
