// Package contango is a clock-tree synthesizer for SoCs: a Go reproduction
// of "CONTANGO: Integrated Optimization of SoC Clock Networks" (Dongjin Lee
// and Igor L. Markov, DATE 2010).
//
// The flow builds a zero-skew DME tree over the clock sinks, repairs
// obstacle violations (rerouting and contour detours), inserts composite
// inverters within a capacitance budget, corrects sink polarity with the
// paper's provably-minimal algorithm, and then runs a cascade of
// accurate-simulation-driven optimizations — buffer sizing, wiresizing,
// wiresnaking and bottom-level fine-tuning — until skew and clock latency
// range stop improving.
//
// Quick start:
//
//	b, _ := contango.Benchmark("ispd09f22")
//	res, err := contango.Synthesize(b, contango.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Final) // skew, CLR, latency, slew, capacitance
//
// The library is self-contained: it includes its own technology model
// (tech), RC netlist extraction and closed-form evaluators (analysis), a
// transient circuit simulator standing in for SPICE (spice), synthetic
// reconstructions of the ISPD'09 contest and Texas Instruments benchmark
// suites (bench), and an SVG renderer (viz). See DESIGN.md for the full
// inventory and EXPERIMENTS.md for the reproduction results.
package contango

import (
	"io"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/eval"
	"contango/internal/slack"
	"contango/internal/spice"
	"contango/internal/viz"
)

// Options re-exports the flow configuration. The zero value gives the
// paper's contest setup: 45 nm technology, batches of 8 small inverters,
// 10% capacitance reserve, transient-checked optimization rounds.
type Options = core.Options

// Result is the outcome of a synthesis run, including the final tree,
// per-stage metric records (the paper's Table III rows) and counters.
type Result = core.Result

// Metrics bundles skew, clock latency range, latency, slew and capacitance.
type Metrics = eval.Metrics

// Benchmark returns a named synthetic benchmark: one of the ISPD'09 suite
// ("ispd09f11" … "ispd09fnb1").
func Benchmark(name string) (*bench.Benchmark, error) { return bench.ISPD09(name) }

// BenchmarkNames lists the ISPD'09-style suite in order.
func BenchmarkNames() []string { return bench.ISPD09Names() }

// ReadBenchmark parses a benchmark from the library's text format.
func ReadBenchmark(r io.Reader) (*bench.Benchmark, error) { return bench.Read(r) }

// WriteBenchmark serializes a benchmark to the library's text format.
func WriteBenchmark(w io.Writer, b *bench.Benchmark) error { return bench.Write(w, b) }

// Synthesize runs the full Contango flow on a benchmark.
func Synthesize(b *bench.Benchmark, o Options) (*Result, error) { return core.Synthesize(b, o) }

// BaselineKind selects a contest-style comparison flow.
type BaselineKind = core.BaselineKind

// Baseline flow kinds (see core documentation).
const (
	BaselineNoOpt  = core.BaselineNoOpt
	BaselineGreedy = core.BaselineGreedy
	BaselineBST    = core.BaselineBST
)

// SynthesizeBaseline runs a one-shot baseline flow (no optimization
// cascade), used for Table IV-style comparisons.
func SynthesizeBaseline(b *bench.Benchmark, kind BaselineKind, o Options) (*Result, error) {
	return core.SynthesizeBaseline(b, kind, o)
}

// RenderSVG writes the result's clock tree as an SVG in the style of the
// paper's Figure 3, with wires colored by slow-down slack.
func RenderSVG(w io.Writer, res *Result) error {
	eng := spice.New()
	var rs []*analysis.Result
	for _, c := range res.Tree.Tech.Corners {
		r, err := eng.Evaluate(res.Tree, c)
		if err != nil {
			return err
		}
		rs = append(rs, r)
	}
	slk := slack.Compute(res.Tree, rs)
	return viz.WriteSVG(w, res.Tree, viz.Options{
		Slacks:    slk,
		Obstacles: res.Benchmark.Obstacles,
		Die:       res.Benchmark.Die,
	})
}
