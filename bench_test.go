// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus microbenchmarks of the substrates. Each
// table bench regenerates the corresponding experiment (on trimmed inputs
// where a full run would dominate the suite runtime); cmd/experiments
// produces the full-size tables with paper-reference columns.
package contango

import (
	"io"
	"reflect"
	"testing"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/core"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/route"
	"contango/internal/slack"
	"contango/internal/spice"
	"contango/internal/tech"
	"contango/internal/viz"
)

// trimmed returns the named benchmark truncated to at most n sinks, with a
// proportionally reduced capacitance budget, for bounded bench runtimes.
// The truncation happens on a deep copy: back-to-back benchmarks loading
// the same name must never observe a previously mutated sink list or cap
// budget through shared backing arrays.
func trimmed(name string, n int) *bench.Benchmark {
	b, err := bench.ISPD09(name)
	if err != nil {
		panic(err)
	}
	b = b.Clone()
	if len(b.Sinks) > n {
		frac := float64(n) / float64(len(b.Sinks))
		b.Sinks = b.Sinks[:n]
		b.CapLimit *= frac
	}
	return b
}

// BenchmarkTableI_InverterAnalysis regenerates the composite inverter
// characterization (paper Table I) and the non-dominated composite set.
func BenchmarkTableI_InverterAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tk := tech.Default45()
		rows := tk.TableI()
		nd := tk.NonDominatedComposites()
		if len(rows) != 5 || len(nd) == 0 {
			b.Fatal("table I generation failed")
		}
	}
}

// BenchmarkTableII_PolarityCorrection runs construction + polarity
// correction (paper Table II: inverted sinks vs added inverters).
func BenchmarkTableII_PolarityCorrection(b *testing.B) {
	bm := trimmed("ispd09f22", 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.SynthesizeBaseline(bm, core.BaselineNoOpt, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.InvertedSinks > 0 && res.AddedInverters >= res.InvertedSinks {
			b.Fatalf("polarity correction not minimal: %d added for %d inverted",
				res.AddedInverters, res.InvertedSinks)
		}
	}
}

// BenchmarkTableIII_StageProgress runs the full optimization cascade and
// checks the paper's stage-progress shape (Table III): wire passes reduce
// skew from the initial buffered tree.
func BenchmarkTableIII_StageProgress(b *testing.B) {
	bm := trimmed("ispd09f22", 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(bm, core.Options{MaxRounds: 6, Cycles: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Final.Skew > res.Stages[0].Metrics.Skew {
			b.Fatal("cascade failed to reduce skew")
		}
	}
}

// BenchmarkTableIV_ContestComparison runs Contango against a one-shot
// baseline (paper Table IV's comparison shape).
func BenchmarkTableIV_ContestComparison(b *testing.B) {
	bm := trimmed("ispd09f22", 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := core.Synthesize(bm, core.Options{MaxRounds: 6, Cycles: 2})
		if err != nil {
			b.Fatal(err)
		}
		base, err := core.SynthesizeBaseline(bm, core.BaselineGreedy, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if full.Final.Skew > base.Final.Skew {
			b.Fatal("optimized flow lost to the greedy baseline")
		}
	}
}

// BenchmarkTableV_Scalability runs the TI-style scaling protocol at one
// size (paper Table V).
func BenchmarkTableV_Scalability(b *testing.B) {
	pool := bench.NewTIPool()
	bm := pool.Sample(200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(bm, core.Options{LargeInverters: true, MaxRounds: 6, Cycles: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Final.TotalCap <= 0 {
			b.Fatal("no capacitance measured")
		}
	}
}

// BenchmarkFigure2_ContourDetour exercises the obstacle detouring algorithm
// on an enclosed-subtree scenario (paper Figure 2).
func BenchmarkFigure2_ContourDetour(b *testing.B) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 4000, 4000)
	obs := geom.NewObstacleSet([]geom.Obstacle{
		{Rect: geom.NewRect(1500, 1500, 2500, 2500)},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := buildEnclosed(tk)
		rep, err := route.Legalize(tr, obs, die, route.Options{SafeCap: 300})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Detours == 0 {
			b.Fatal("expected a contour detour")
		}
	}
}

func buildEnclosed(tk *tech.Tech) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 2000), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(2000, 2000))
	for _, l := range []geom.Point{{X: 3000, Y: 2000}, {X: 2000, Y: 3000}, {X: 2000, Y: 1000}} {
		c := tr.AddChild(hub, ctree.Internal, l)
		for k := 0; k < 8; k++ {
			tr.AddSink(c, geom.Pt(l.X+float64(30*k), l.Y+100), 40, "")
		}
	}
	return tr
}

// BenchmarkFigure3_Render renders a synthesized tree with the slack
// gradient (paper Figure 3).
func BenchmarkFigure3_Render(b *testing.B) {
	bm := trimmed("ispd09f22", 40)
	res, err := core.SynthesizeBaseline(bm, core.BaselineNoOpt, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng := spice.New()
	var rs []*analysis.Result
	for _, c := range res.Tree.Tech.Corners {
		r, err := eng.Evaluate(res.Tree, c)
		if err != nil {
			b.Fatal(err)
		}
		rs = append(rs, r)
	}
	slk := slack.Compute(res.Tree, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := viz.WriteSVG(io.Discard, res.Tree, viz.Options{
			Slacks: slk, Obstacles: bm.Obstacles, Die: bm.Die,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CompositeBuffers compares the contest configuration
// (8x-small batches) against the TI configuration (large groups) — the
// paper's Section V runtime/quality trade.
func BenchmarkAblation_CompositeBuffers(b *testing.B) {
	pool := bench.NewTIPool()
	bm := pool.Sample(200, 7)
	for _, mode := range []struct {
		name  string
		large bool
	}{{"small8x", false}, {"largeGroups", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.SynthesizeBaseline(bm, core.BaselineNoOpt,
					core.Options{LargeInverters: mode.large})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_InsertionModes compares balanced load-threshold
// insertion against the van Ginneken DP (a design choice DESIGN.md calls
// out).
func BenchmarkAblation_InsertionModes(b *testing.B) {
	bm := trimmed("ispd09f22", 60)
	tk := tech.Default45()
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	for _, mode := range []string{"balanced", "vg"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := dme.BuildZST(tk, bm.Source, bm.Sinks, dme.Options{})
				tr.SourceR = bm.SourceR
				var err error
				if mode == "vg" {
					_, err = buffering.Insert(tr, comp, buffering.Options{})
				} else {
					_, err = buffering.BalancedInsert(tr, comp, buffering.Options{})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate microbenchmarks ---

func BenchmarkDME_ZST1000(b *testing.B) {
	pool := bench.NewTIPool()
	bm := pool.Sample(1000, 3)
	tk := tech.Default45()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := dme.BuildZST(tk, bm.Source, bm.Sinks, dme.Options{})
		if tr.NumNodes() == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkTransientEvaluate(b *testing.B) {
	bm := trimmed("ispd09f22", 60)
	res, err := core.SynthesizeBaseline(bm, core.BaselineNoOpt, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng := spice.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(res.Tree, res.Tree.Tech.Reference()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElmoreEvaluate(b *testing.B) {
	bm := trimmed("ispd09f22", 60)
	res, err := core.SynthesizeBaseline(bm, core.BaselineNoOpt, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := &analysis.Elmore{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(res.Tree, res.Tree.Tech.Reference()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalPhase isolates the cascade's evaluation phase: one sizing
// move on a buffered tree followed by a both-corner accurate evaluation.
// "full" re-extracts and re-simulates the whole network per move (the
// pre-incremental flow); "incremental" re-simulates only the move's dirty
// cone through the per-stage cache. The ns/op ratio between the two is the
// evaluation-phase speedup the CI bench gate tracks in BENCH_ci.json.
func BenchmarkEvalPhase(b *testing.B) {
	bm := trimmed("ispd09f22", 60)
	seed, err := core.SynthesizeBaseline(bm, core.BaselineNoOpt, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		tr := seed.Tree.Clone()
		sinks := tr.Sinks()
		eng := spice.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.AddSnake(sinks[i%len(sinks)], 25)
			for _, c := range tr.Tech.Corners {
				if _, err := eng.Evaluate(tr, c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		tr := seed.Tree.Clone()
		sinks := tr.Sinks()
		ie := spice.NewIncremental(tr, spice.New(), 1)
		if _, err := ie.EvaluateCorners(tr, tr.Tech.Corners); err != nil {
			b.Fatal(err) // warm the cache: steady-state cost is what matters
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.AddSnake(sinks[i%len(sinks)], 25)
			if _, err := ie.EvaluateCorners(tr, tr.Tech.Corners); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCascadeIncremental runs the full optimization cascade with the
// incremental engine (the production configuration), tracking end-to-end
// flow cost in CI.
func BenchmarkCascadeIncremental(b *testing.B) {
	bm := trimmed("ispd09f22", 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(bm.Clone(), core.Options{MaxRounds: 6, Cycles: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.StageReuses == 0 {
			b.Fatal("incremental cache unused")
		}
	}
}

// BenchmarkPlanMatrix smokes the non-default built-in synthesis plans end
// to end on one trimmed benchmark: "fast" (reduced round budgets, no
// convergence cycles) and "wire-only" (cascade without TBSZ). CI requires
// both rows to be present (benchci -require), so a plan that stops
// synthesizing fails the gate rather than disappearing from the report;
// the 30% threshold gate on the unchanged default-plan benchmarks above
// doubles as the pipeline-overhead budget.
func BenchmarkPlanMatrix(b *testing.B) {
	bm := trimmed("ispd09f22", 40)
	for _, plan := range []string{"fast", "wire-only"} {
		b.Run(plan, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Synthesize(bm.Clone(), core.Options{Plan: plan, MaxRounds: 6, Cycles: 2})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Stages) == 0 || res.Final.Skew > res.Stages[0].Metrics.Skew {
					b.Fatalf("plan %s did not improve skew", plan)
				}
				if plan == "wire-only" {
					for _, st := range res.Stages {
						if st.Name == "TBSZ" {
							b.Fatal("wire-only plan ran TBSZ")
						}
					}
				}
			}
		})
	}
}

// BenchmarkCornerMatrix smokes the corner-set engine end to end on one
// trimmed contest benchmark: the five-corner pvt5 grid and a deterministic
// eight-sample Monte Carlo set. Each iteration synthesizes the same input
// twice under the same spec and fails on any metric divergence, so the CI
// bench gate (benchci -require) pins both "the corner sets still
// synthesize" and "mc metrics are seed-stable" — a variation run that
// stopped being reproducible fails the row instead of silently drifting.
func BenchmarkCornerMatrix(b *testing.B) {
	bm := trimmed("ispd09f22", 40)
	for _, spec := range []string{"pvt5", "mc:8:1"} {
		wantCorners := 5
		if spec != "pvt5" {
			wantCorners = 8
		}
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Corners: spec, MaxRounds: 2, Cycles: -1}
				r1, err := core.Synthesize(bm.Clone(), opts)
				if err != nil {
					b.Fatal(err)
				}
				r2, err := core.Synthesize(bm.Clone(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if !reflect.DeepEqual(r1.Final, r2.Final) {
					b.Fatalf("corner set %s not deterministic:\n%+v\n%+v", spec, r1.Final, r2.Final)
				}
				if len(r1.Final.PerCorner) != wantCorners {
					b.Fatalf("corner set %s: %d per-corner rows, want %d", spec, len(r1.Final.PerCorner), wantCorners)
				}
				// Yield may legitimately be zero here (the trimmed cap
				// budget is violated on this instance, which gates every
				// sample); the quantiles still must be populated and
				// ordered.
				if f := r1.Final; spec != "pvt5" &&
					(f.LatP50 <= 0 || f.LatP95 < f.LatP50 || f.Yield < 0 || f.Yield > 1) {
					b.Fatalf("mc yield stats wrong: %+v", f)
				}
			}
		})
	}
}

func BenchmarkMazeRoute(b *testing.B) {
	die := geom.NewRect(0, 0, 10000, 10000)
	obs := geom.NewObstacleSet([]geom.Obstacle{
		{Rect: geom.NewRect(3000, 0, 4000, 8000)},
		{Rect: geom.NewRect(6000, 2000, 7000, 10000)},
	})
	m := geom.NewMaze(die, 50, obs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Route(geom.Pt(100, 5000), geom.Pt(9900, 5000)); err != nil {
			b.Fatal(err)
		}
	}
}
