//go:build !linux

package contango

// peakRSSMB is unavailable off Linux (Maxrss units differ per platform);
// zero suppresses the benchmark metric.
func peakRSSMB() float64 { return 0 }
