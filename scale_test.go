// Scale harness: the million-sink-class benchmark CI gates. One timed pass
// covers the whole large-instance data path — streaming load of a generated
// TI-scale case, DME construction, buffering, the batched multi-corner
// closed-form kernels, and an arena round-trip — and reports peak RSS next
// to the standard ns/B/allocs columns so memory blowups fail the bench gate
// rather than only the CI runner.
package contango

import (
	"os"
	"path/filepath"
	"testing"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/tech"
)

// scaleSinks is the CI size: large enough that per-node constant factors
// dominate (the regime the arena layout targets), small enough to finish a
// -benchtime=1x run in a normal CI slot. The generator streams any size up
// to a million and beyond; raise this locally to measure the full curve.
const scaleSinks = 100_000

func BenchmarkMillionSink(b *testing.B) {
	path := filepath.Join(b.TempDir(), "ti-scale.cns")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.GenerateTIScale(f, scaleSinks, 1); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	tk := tech.Default45()
	cs, err := corners.Build("pvt5", tk)
	if err != nil {
		b.Fatal(err)
	}
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}

	b.Run("100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm, err := bench.Load(path)
			if err != nil {
				b.Fatal(err)
			}
			if len(bm.Sinks) != scaleSinks {
				b.Fatalf("loaded %d sinks, want %d", len(bm.Sinks), scaleSinks)
			}
			tr := dme.BuildZST(tk, bm.Source, bm.Sinks, dme.Options{})
			tr.SourceR = bm.SourceR
			if _, err := buffering.BalancedInsert(tr, comp, buffering.Options{}); err != nil {
				b.Fatal(err)
			}
			// Batched closed-form evaluation: all five corners in one
			// topology sweep (transient simulation is the small-instance
			// tool; at this size the closed-form kernels are the product
			// path).
			e := &analysis.Elmore{}
			rs, err := e.EvaluateCorners(tr, cs.Corners)
			if err != nil {
				b.Fatal(err)
			}
			if len(rs) != len(cs.Corners) {
				b.Fatalf("%d corner results, want %d", len(rs), len(cs.Corners))
			}
			for k, r := range rs {
				if len(r.Rise) != scaleSinks {
					b.Fatalf("corner %d: %d arrivals, want %d", k, len(r.Rise), scaleSinks)
				}
			}
			// Arena round-trip: the SoA layout must carry the full-size
			// tree losslessly (the codec path runs on it).
			a := ctree.FromTree(tr)
			if a.NumNodes() != tr.NumNodes() {
				b.Fatalf("arena holds %d nodes, tree %d", a.NumNodes(), tr.NumNodes())
			}
			back, err := a.ToTree()
			if err != nil {
				b.Fatal(err)
			}
			if back.NumNodes() != tr.NumNodes() {
				b.Fatalf("round-trip lost nodes: %d vs %d", back.NumNodes(), tr.NumNodes())
			}
		}
		if rss := peakRSSMB(); rss > 0 {
			b.ReportMetric(rss, "peak-rss-MB")
		}
	})
}
