// Scale harness: the million-sink-class benchmark CI gates. The large-
// instance data path is timed phase by phase — streaming load of a generated
// TI-scale case, arena-native DME construction, arena buffering, the batched
// multi-corner closed-form kernels, and the arena/pointer round-trip — and
// every phase reports peak RSS next to the standard ns/B/allocs columns so a
// memory blowup fails the bench gate rather than only the CI runner. A
// gated full-million construction row measures the top of the curve.
package contango

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/tech"
)

// scaleSinks is the CI size: large enough that per-node constant factors
// dominate (the regime the arena layout targets), small enough to finish a
// -benchtime=1x run in a normal CI slot. The generator streams any size up
// to a million and beyond; the gated "1M" row below measures the full curve.
const scaleSinks = 250_000

// millionSinks is the gated top-of-curve size (set CONTANGO_SCALE_1M=1).
const millionSinks = 1_000_000

func reportPeakRSS(b *testing.B) {
	if rss := peakRSSMB(); rss > 0 {
		b.ReportMetric(rss, "peak-rss-MB")
	}
}

func BenchmarkMillionSink(b *testing.B) {
	path := filepath.Join(b.TempDir(), "ti-scale.cns")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.GenerateTIScale(f, scaleSinks, 1); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	tk := tech.Default45()
	cs, err := corners.Build("pvt5", tk)
	if err != nil {
		b.Fatal(err)
	}
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}

	// Later phases reuse the previous phase's last output, so each
	// sub-benchmark times exactly one phase of the pipeline. When -bench
	// filters skip an earlier phase its fixture is rebuilt untimed.
	var bm *bench.Benchmark
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm, err = bench.Load(path)
			if err != nil {
				b.Fatal(err)
			}
			if len(bm.Sinks) != scaleSinks {
				b.Fatalf("loaded %d sinks, want %d", len(bm.Sinks), scaleSinks)
			}
		}
		reportPeakRSS(b)
	})
	if bm == nil {
		if bm, err = bench.Load(path); err != nil {
			b.Fatal(err)
		}
	}

	// DME builds straight into the SoA arena (the product path); slots are
	// reserved up front from the sink count, so construction is near
	// allocation-free per node.
	var built *ctree.Arena
	b.Run("dme", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			built = dme.BuildZSTArena(tk, bm.Source, bm.Sinks, dme.Options{})
			built.SourceR = bm.SourceR
		}
		reportPeakRSS(b)
	})
	if built == nil {
		built = dme.BuildZSTArena(tk, bm.Source, bm.Sinks, dme.Options{})
		built.SourceR = bm.SourceR
	}

	var buffered *ctree.Arena
	b.Run("buffering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work := built.Clone()
			b.StartTimer()
			if _, err := buffering.BalancedInsertArena(work, comp, buffering.Options{}); err != nil {
				b.Fatal(err)
			}
			buffered = work
		}
		reportPeakRSS(b)
	})
	if buffered == nil {
		buffered = built.Clone()
		if _, err := buffering.BalancedInsertArena(buffered, comp, buffering.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	buffered.Compact()
	tr, err := buffered.ToTree()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Batched closed-form evaluation: all five corners in one
			// topology sweep (transient simulation is the small-instance
			// tool; at this size the closed-form kernels are the product
			// path).
			e := &analysis.Elmore{}
			rs, err := e.EvaluateCorners(tr, cs.Corners)
			if err != nil {
				b.Fatal(err)
			}
			if len(rs) != len(cs.Corners) {
				b.Fatalf("%d corner results, want %d", len(rs), len(cs.Corners))
			}
			for k, r := range rs {
				if len(r.Rise) != scaleSinks {
					b.Fatalf("corner %d: %d arrivals, want %d", k, len(r.Rise), scaleSinks)
				}
			}
		}
		reportPeakRSS(b)
	})

	b.Run("roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The SoA layout must carry the full-size tree losslessly (the
			// codec path runs on it).
			a := ctree.FromTree(tr)
			if a.NumNodes() != tr.NumNodes() {
				b.Fatalf("arena holds %d nodes, tree %d", a.NumNodes(), tr.NumNodes())
			}
			back, err := a.ToTree()
			if err != nil {
				b.Fatal(err)
			}
			if back.NumNodes() != tr.NumNodes() {
				b.Fatalf("round-trip lost nodes: %d vs %d", back.NumNodes(), tr.NumNodes())
			}
		}
		reportPeakRSS(b)
	})

	// The top-of-curve row: stream-generate and arena-build the full
	// million-sink case. Gated because generation plus construction is too
	// slow for every CI bench pass; the scale-smoke job runs it under
	// GOMEMLIMIT, where peak RSS growing sub-linearly vs the 250k phases is
	// the acceptance signal.
	b.Run("1M", func(b *testing.B) {
		if os.Getenv("CONTANGO_SCALE_1M") == "" {
			b.Skip("set CONTANGO_SCALE_1M=1 to run the full million-sink construction row")
		}
		mpath := filepath.Join(b.TempDir(), "ti-scale-1m.cns")
		mf, err := os.Create(mpath)
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.GenerateTIScale(mf, millionSinks, 1); err != nil {
			b.Fatal(err)
		}
		if err := mf.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mbm, err := bench.Load(mpath)
			if err != nil {
				b.Fatal(err)
			}
			a := dme.BuildZSTArena(tk, mbm.Source, mbm.Sinks,
				dme.Options{Parallelism: runtime.GOMAXPROCS(0)})
			a.SourceR = mbm.SourceR
			if a.NumNodes() < millionSinks {
				b.Fatalf("arena holds %d nodes, want >= %d", a.NumNodes(), millionSinks)
			}
		}
		reportPeakRSS(b)
	})
}
