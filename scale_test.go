// Scale harness: the million-sink-class benchmark CI gates. The large-
// instance data path is timed phase by phase — streaming load of a generated
// TI-scale case, arena-native DME construction, arena buffering, the batched
// multi-corner closed-form kernels, and the arena/pointer round-trip — and
// every phase reports peak RSS next to the standard ns/B/allocs columns so a
// memory blowup fails the bench gate rather than only the CI runner. A
// gated full-million construction row measures the top of the curve.
package contango

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/eco"
	"contango/internal/tech"
)

// scaleSinks is the CI size: large enough that per-node constant factors
// dominate (the regime the arena layout targets), small enough to finish a
// -benchtime=1x run in a normal CI slot. The generator streams any size up
// to a million and beyond; the gated "1M" row below measures the full curve.
const scaleSinks = 250_000

// millionSinks is the gated top-of-curve size (set CONTANGO_SCALE_1M=1).
const millionSinks = 1_000_000

func reportPeakRSS(b *testing.B) {
	if rss := peakRSSMB(); rss > 0 {
		b.ReportMetric(rss, "peak-rss-MB")
	}
}

func BenchmarkMillionSink(b *testing.B) {
	path := filepath.Join(b.TempDir(), "ti-scale.cns")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.GenerateTIScale(f, scaleSinks, 1); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	tk := tech.Default45()
	cs, err := corners.Build("pvt5", tk)
	if err != nil {
		b.Fatal(err)
	}
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}

	// Later phases reuse the previous phase's last output, so each
	// sub-benchmark times exactly one phase of the pipeline. When -bench
	// filters skip an earlier phase its fixture is rebuilt untimed.
	var bm *bench.Benchmark
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm, err = bench.Load(path)
			if err != nil {
				b.Fatal(err)
			}
			if len(bm.Sinks) != scaleSinks {
				b.Fatalf("loaded %d sinks, want %d", len(bm.Sinks), scaleSinks)
			}
		}
		reportPeakRSS(b)
	})
	if bm == nil {
		if bm, err = bench.Load(path); err != nil {
			b.Fatal(err)
		}
	}

	// DME builds straight into the SoA arena (the product path); slots are
	// reserved up front from the sink count, so construction is near
	// allocation-free per node.
	var built *ctree.Arena
	b.Run("dme", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			built = dme.BuildZSTArena(tk, bm.Source, bm.Sinks, dme.Options{})
			built.SourceR = bm.SourceR
		}
		reportPeakRSS(b)
	})
	if built == nil {
		built = dme.BuildZSTArena(tk, bm.Source, bm.Sinks, dme.Options{})
		built.SourceR = bm.SourceR
	}

	var buffered *ctree.Arena
	b.Run("buffering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work := built.Clone()
			b.StartTimer()
			if _, err := buffering.BalancedInsertArena(work, comp, buffering.Options{}); err != nil {
				b.Fatal(err)
			}
			buffered = work
		}
		reportPeakRSS(b)
	})
	if buffered == nil {
		buffered = built.Clone()
		if _, err := buffering.BalancedInsertArena(buffered, comp, buffering.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	buffered.Compact()
	tr, err := buffered.ToTree()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Batched closed-form evaluation: all five corners in one
			// topology sweep (transient simulation is the small-instance
			// tool; at this size the closed-form kernels are the product
			// path).
			e := &analysis.Elmore{}
			rs, err := e.EvaluateCorners(tr, cs.Corners)
			if err != nil {
				b.Fatal(err)
			}
			if len(rs) != len(cs.Corners) {
				b.Fatalf("%d corner results, want %d", len(rs), len(cs.Corners))
			}
			for k, r := range rs {
				if len(r.Rise) != scaleSinks {
					b.Fatalf("corner %d: %d arrivals, want %d", k, len(r.Rise), scaleSinks)
				}
			}
		}
		reportPeakRSS(b)
	})

	b.Run("roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The SoA layout must carry the full-size tree losslessly (the
			// codec path runs on it).
			a := ctree.FromTree(tr)
			if a.NumNodes() != tr.NumNodes() {
				b.Fatalf("arena holds %d nodes, tree %d", a.NumNodes(), tr.NumNodes())
			}
			back, err := a.ToTree()
			if err != nil {
				b.Fatal(err)
			}
			if back.NumNodes() != tr.NumNodes() {
				b.Fatalf("round-trip lost nodes: %d vs %d", back.NumNodes(), tr.NumNodes())
			}
		}
		reportPeakRSS(b)
	})

	// The top-of-curve row: stream-generate and arena-build the full
	// million-sink case. Gated because generation plus construction is too
	// slow for every CI bench pass; the scale-smoke job runs it under
	// GOMEMLIMIT, where peak RSS growing sub-linearly vs the 250k phases is
	// the acceptance signal.
	b.Run("1M", func(b *testing.B) {
		if os.Getenv("CONTANGO_SCALE_1M") == "" {
			b.Skip("set CONTANGO_SCALE_1M=1 to run the full million-sink construction row")
		}
		mpath := filepath.Join(b.TempDir(), "ti-scale-1m.cns")
		mf, err := os.Create(mpath)
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.GenerateTIScale(mf, millionSinks, 1); err != nil {
			b.Fatal(err)
		}
		if err := mf.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mbm, err := bench.Load(mpath)
			if err != nil {
				b.Fatal(err)
			}
			a := dme.BuildZSTArena(tk, mbm.Source, mbm.Sinks,
				dme.Options{Parallelism: runtime.GOMAXPROCS(0)})
			a.SourceR = mbm.SourceR
			if a.NumNodes() < millionSinks {
				b.Fatalf("arena holds %d nodes, want >= %d", a.NumNodes(), millionSinks)
			}
		}
		reportPeakRSS(b)
	})
}

// BenchmarkECO gates the incremental re-synthesis claim at CI scale: a 1%
// perturbation of the 250k-sink case is replayed through the locality-
// scoped ECO repair ("eco" row) and re-synthesized from scratch ("full"
// row), and the eco row reports the full/eco ratio as a custom metric the
// bench gate holds at >= 10x. Both rows time construction only — the first
// multi-corner evaluation costs the same on either path (the evaluator
// starts cold either way), so including it would only dilute the ratio the
// ECO path is responsible for. The untimed fixture is the base synthesis
// itself; the eco row's per-iteration base clone is excluded the same way
// the buffering row excludes its input clone.
func BenchmarkECO(b *testing.B) {
	path := filepath.Join(b.TempDir(), "ti-scale.cns")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.GenerateTIScale(f, scaleSinks, 1); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	bm, err := bench.Load(path)
	if err != nil {
		b.Fatal(err)
	}
	tk := tech.Default45()
	ladder := tk.BatchLadder("Small", 8)

	// One full construction prelude, exactly as the flow's zst -> buffer ->
	// polarity passes run it (no obstacles in the TI-scale cases, so the
	// legalize pass is a no-op): ZST into the arena, best-composite ladder
	// sweep, polarity correction with the half-strength composite. This is
	// what an ECO replaces — the full row times it on the perturbed
	// benchmark, and the untimed base fixture runs the same pipeline.
	var comp tech.Composite
	construct := func(bm *bench.Benchmark) *ctree.Arena {
		a := dme.BuildZSTArena(tk, bm.Source, bm.Sinks, dme.Options{})
		a.SourceR = bm.SourceR
		sweep, err := buffering.InsertBestCompositeArena(a, ladder, bm.CapLimit, 0.10, buffering.Options{})
		if err != nil {
			b.Fatal(err)
		}
		comp = sweep.Composite
		polComp := comp
		if half := polComp.N / 2; half >= 1 {
			polComp.N = half
		}
		buffering.CorrectPolarityArena(a, polComp, nil)
		return a
	}
	base := construct(bm)

	d, err := eco.Generate(bm, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	perturbed, err := d.Perturb(bm)
	if err != nil {
		b.Fatal(err)
	}

	var fullNs float64
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			construct(perturbed)
		}
		fullNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		reportPeakRSS(b)
	})

	b.Run("eco", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work := base.Clone()
			eco.ReserveFor(work, d) // restore-phase cost, like the clone
			b.StartTimer()
			rep, err := eco.Apply(work, d, eco.Config{Composite: comp, Die: bm.Die})
			if err != nil {
				b.Fatal(err)
			}
			if got := rep.Moved + rep.Added + rep.Removed; got != d.Size() {
				b.Fatalf("applied %d delta ops, want %d", got, d.Size())
			}
		}
		if fullNs > 0 {
			ecoNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(fullNs/ecoNs, "full-vs-eco-x")
		}
		reportPeakRSS(b)
	})
}
