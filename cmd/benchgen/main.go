// Command benchgen writes synthetic benchmarks in the library's text format:
// the ISPD'09-style contest suite or samples of the TI-style 135K-sink pool.
//
//	benchgen -out bench/                 # the seven contest benchmarks
//	benchgen -ti 5000 -seed 3 -out bench # one TI sample with 5000 sinks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"contango/internal/bench"
)

func main() {
	out := flag.String("out", ".", "output directory")
	ti := flag.Int("ti", 0, "generate a TI-style sample with this many sinks instead of the contest suite")
	seed := flag.Int64("seed", 1, "sampling seed for TI mode")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	write := func(b *bench.Benchmark) {
		path := filepath.Join(*out, b.Name+".cns")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := bench.Write(f, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d sinks, %d obstacles)\n", path, len(b.Sinks), len(b.Obstacles))
	}
	if *ti > 0 {
		pool := bench.NewTIPool()
		write(pool.Sample(*ti, *seed))
		return
	}
	for _, b := range bench.ISPD09Suite() {
		write(b)
	}
}
