// Command benchgen writes synthetic benchmarks in the library's text format:
// the ISPD'09-style contest suite, samples of the TI-style 135K-sink pool,
// or streamed TI-scale cases for sink counts past the pool size.
//
//	benchgen -out bench/                 # the seven contest benchmarks
//	benchgen -ti 5000 -seed 3 -out bench # one TI sample with 5000 sinks
//	benchgen -sinks 100000 -out bench    # streamed TI-scale case (alias of -ti)
//
// Counts above the 135K pool switch to the streaming generator, which never
// materializes the sink list and scales the die to keep placement density at
// the real chip's level — the path the million-sink scale benchmarks use.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"contango/internal/bench"
	"contango/internal/eco"
)

// maxReasonableSinks is where we start warning: cases past 2M sinks are
// fine for the generator but unlikely to be synthesizable in one session.
const maxReasonableSinks = 2_000_000

// Synthesis memory model, calibrated on the scale harness rows in
// BENCH_baseline.json: arena construction costs under 1 KiB per sink and
// the evaluation and round-trip phases roughly double that, so 3 KiB per
// sink plus a fixed runtime floor over-estimates the measured peaks
// (a 250k-sink run peaks under 500 MiB, a million-sink construction under
// 750 MiB). Deliberately pessimistic: failing fast beats OOMing mid-run.
const (
	synthBytesPerSink = 3 << 10
	synthBaseOverhead = 128 << 20
)

// estimatePeakRSS predicts the peak resident set of synthesizing an
// n-sink case, in bytes.
func estimatePeakRSS(n int) uint64 {
	return synthBaseOverhead + uint64(n)*synthBytesPerSink
}

// availableMemoryBytes reports the kernel's MemAvailable estimate, or 0
// when it cannot be determined (non-Linux hosts) — callers skip the check.
func availableMemoryBytes() uint64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0
	}
	return parseMemAvailable(string(data))
}

func parseMemAvailable(meminfo string) uint64 {
	for _, line := range strings.Split(meminfo, "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return kb << 10
			}
		}
	}
	return 0
}

func main() {
	out := flag.String("out", ".", "output directory")
	ti := flag.Int("ti", 0, "generate a TI-style sample with this many sinks instead of the contest suite")
	sinks := flag.Int("sinks", 0, "alias of -ti: TI-style sink count")
	seed := flag.Int64("seed", 1, "sampling seed for TI mode")
	force := flag.Bool("force", false, "generate even when the estimated synthesis peak RSS exceeds available memory")
	ecoPerturb := flag.Float64("eco-perturb", 0, "emit a deterministic ECO delta perturbing this fraction of an existing benchmark's sinks (requires -from)")
	from := flag.String("from", "", "benchmark file (.cns) the -eco-perturb delta is generated against")
	flag.Parse()

	if *ecoPerturb > 0 || *from != "" {
		if err := writeECODelta(*out, *from, *ecoPerturb, *seed); err != nil {
			fatal(err)
		}
		return
	}

	n := *ti
	if *sinks != 0 {
		if *ti != 0 && *ti != *sinks {
			fatal(fmt.Errorf("benchgen: -ti %d and -sinks %d disagree; pass one", *ti, *sinks))
		}
		n = *sinks
	}
	if n < 0 || (flagPassed("sinks") || flagPassed("ti")) && n == 0 {
		fatal(fmt.Errorf("benchgen: sink count must be positive, got %d", n))
	}
	if n > maxReasonableSinks {
		fmt.Fprintf(os.Stderr, "benchgen: warning: %d sinks exceeds %d; generation streams fine but synthesis will be very slow\n",
			n, maxReasonableSinks)
	}
	if n > 0 {
		// Generation streams at any size; synthesis of the result is what
		// blows up. Size the request against this machine before writing a
		// case that can only OOM, so the mistake costs seconds, not a
		// thrashing runner.
		est := estimatePeakRSS(n)
		fmt.Printf("estimated synthesis peak RSS for %d sinks: ~%d MiB\n", n, est>>20)
		if avail := availableMemoryBytes(); avail > 0 && est > avail {
			msg := fmt.Errorf("benchgen: synthesizing %d sinks needs ~%d MiB but only %d MiB is available; shrink -sinks or pass -force",
				n, est>>20, avail>>20)
			if !*force {
				fatal(msg)
			}
			fmt.Fprintf(os.Stderr, "benchgen: warning (-force): %v\n", msg)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	write := func(b *bench.Benchmark) {
		path := filepath.Join(*out, b.Name+".cns")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.Write(f, b); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%d sinks, %d obstacles)\n", path, len(b.Sinks), len(b.Obstacles))
	}
	switch {
	case n > 135000:
		// Past the pool size: stream, never holding the sink list in memory.
		path := filepath.Join(*out, fmt.Sprintf("ti-scale-%d.cns", n))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.GenerateTIScale(f, n, *seed); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d sinks, streamed)\n", path, n)
	case n > 0:
		pool := bench.NewTIPool()
		write(pool.Sample(n, *seed))
	default:
		for _, b := range bench.ISPD09Suite() {
			write(b)
		}
	}
}

// writeECODelta generates the deterministic perturbation delta for an
// existing benchmark file and writes it next to the generated cases as
// <name>.eco, in the canonical delta text format contango -eco consumes.
func writeECODelta(out, from string, frac float64, seed int64) error {
	if from == "" {
		return fmt.Errorf("benchgen: -eco-perturb requires -from <file.cns> naming the benchmark to perturb")
	}
	if frac <= 0 {
		return fmt.Errorf("benchgen: -from requires -eco-perturb with a fraction in (0,1]")
	}
	b, err := bench.Load(from)
	if err != nil {
		return err
	}
	d, err := eco.Generate(b, frac, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(out, b.Name+".eco")
	if err := os.WriteFile(path, []byte(d.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d ops: %d moved, %d added, %d removed)\n",
		path, d.Size(), len(d.Moved), len(d.Added), len(d.Removed))
	return nil
}

func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
