package main

import "testing"

func TestParseMemAvailable(t *testing.T) {
	meminfo := "MemTotal:       16384000 kB\nMemFree:         1234567 kB\nMemAvailable:    8000000 kB\nBuffers:          100000 kB\n"
	if got := parseMemAvailable(meminfo); got != 8000000<<10 {
		t.Fatalf("parseMemAvailable = %d, want %d", got, uint64(8000000)<<10)
	}
	if got := parseMemAvailable("MemTotal: 1 kB\n"); got != 0 {
		t.Fatalf("missing MemAvailable should yield 0, got %d", got)
	}
	if got := parseMemAvailable(""); got != 0 {
		t.Fatalf("empty meminfo should yield 0, got %d", got)
	}
}

func TestEstimatePeakRSSCoversMeasuredPeaks(t *testing.T) {
	// The model must over-estimate the peaks the scale harness actually
	// measured (BENCH_baseline.json): ~469 MiB at 250k sinks end to end,
	// ~728 MiB for million-sink construction.
	if est := estimatePeakRSS(250_000); est < 500<<20 {
		t.Errorf("250k estimate %d MiB under the measured 469 MiB peak", est>>20)
	}
	if est := estimatePeakRSS(1_000_000); est < 750<<20 {
		t.Errorf("1M estimate %d MiB under the measured 728 MiB peak", est>>20)
	}
	// And stay monotone in n.
	if estimatePeakRSS(10) >= estimatePeakRSS(1_000_000) {
		t.Error("estimate not monotone in sink count")
	}
}
