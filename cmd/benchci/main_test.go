package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: contango
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFast-8         	     100	    120000 ns/op	     320 B/op	       4 allocs/op
BenchmarkSlow           	       1	 200000000 ns/op
BenchmarkEvalPhase/full-8         	       1	 220000000 ns/op	27785296 B/op	   20680 allocs/op
BenchmarkEvalPhase/incremental-8  	       1	   1600000 ns/op	  241256 B/op	    1472 allocs/op
PASS
ok  	contango	10.5s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" {
		t.Errorf("platform not captured: %q %q", snap.Goos, snap.Goarch)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	fast := snap.Benchmarks["BenchmarkFast"]
	if fast.NsPerOp != 120000 || fast.AllocsPerOp != 4 || fast.Iterations != 100 {
		t.Errorf("BenchmarkFast parsed wrong: %+v", fast)
	}
	if _, ok := snap.Benchmarks["BenchmarkEvalPhase/full"]; !ok {
		t.Error("sub-benchmark name (with -procs suffix) not normalized")
	}
	if snap.Benchmarks["BenchmarkSlow"].NsPerOp != 2e8 {
		t.Error("benchmark without -benchmem columns not parsed")
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base, _ := parse(strings.NewReader(sample))
	cur, _ := parse(strings.NewReader(sample))

	// Unchanged: no regressions.
	if regs, _ := compare(base, cur, 0.30, 1e7, ""); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// A 2x slowdown on a slow benchmark must gate.
	e := cur.Benchmarks["BenchmarkSlow"]
	e.NsPerOp *= 2
	cur.Benchmarks["BenchmarkSlow"] = e
	regs, _ := compare(base, cur, 0.30, 1e7, "")
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkSlow") {
		t.Fatalf("regression not caught: %v", regs)
	}

	// The same slowdown under the gating floor only warns.
	cur2, _ := parse(strings.NewReader(sample))
	f := cur2.Benchmarks["BenchmarkFast"]
	f.NsPerOp *= 2
	cur2.Benchmarks["BenchmarkFast"] = f
	regs, notes := compare(base, cur2, 0.30, 1e7, "")
	if len(regs) != 0 {
		t.Fatalf("sub-floor jitter gated: %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "BenchmarkFast") {
			found = true
		}
	}
	if !found {
		t.Error("sub-floor slowdown not even noted")
	}
}

func TestCompareNormalization(t *testing.T) {
	base, _ := parse(strings.NewReader(sample))

	// A uniformly 2x slower machine: every benchmark doubles, including
	// the reference. Raw comparison would flag everything; normalized by
	// the reference it must be quiet.
	cur, _ := parse(strings.NewReader(sample))
	for name, e := range cur.Benchmarks {
		e.NsPerOp *= 2
		cur.Benchmarks[name] = e
	}
	regs, _ := compare(base, cur, 0.30, 1e7, "BenchmarkSlow")
	if len(regs) != 0 {
		t.Fatalf("uniform machine slowdown gated under normalization: %v", regs)
	}
	if regs, _ := compare(base, cur, 0.30, 1e7, ""); len(regs) == 0 {
		t.Fatal("sanity: raw comparison should have flagged the 2x run")
	}

	// A real regression relative to peers still gates when normalized.
	e := cur.Benchmarks["BenchmarkEvalPhase/full"]
	e.NsPerOp *= 2 // now 4x baseline while the reference is 2x
	cur.Benchmarks["BenchmarkEvalPhase/full"] = e
	regs, _ = compare(base, cur, 0.30, 1e7, "BenchmarkSlow")
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkEvalPhase/full") {
		t.Fatalf("relative regression not caught under normalization: %v", regs)
	}
}

func TestCheckSpeedup(t *testing.T) {
	cur, _ := parse(strings.NewReader(sample))
	if err := checkSpeedup(cur, "BenchmarkEvalPhase/full,BenchmarkEvalPhase/incremental,2"); err != nil {
		t.Errorf("137x speedup rejected: %v", err)
	}
	if err := checkSpeedup(cur, "BenchmarkEvalPhase/full,BenchmarkEvalPhase/incremental,1000"); err == nil {
		t.Error("impossible speedup requirement accepted")
	}
	if err := checkSpeedup(cur, "nope"); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestCheckRequired(t *testing.T) {
	cur, _ := parse(strings.NewReader(sample))
	if missing := checkRequired(cur, "BenchmarkFast, BenchmarkEvalPhase/full"); len(missing) != 0 {
		t.Errorf("present benchmarks reported missing: %v", missing)
	}
	missing := checkRequired(cur, "BenchmarkFast,BenchmarkPlanMatrix/fast,BenchmarkPlanMatrix/wire-only")
	if len(missing) != 2 {
		t.Fatalf("missing = %v, want 2 entries", missing)
	}
	for _, m := range missing {
		if !strings.Contains(m, "BenchmarkPlanMatrix") {
			t.Errorf("unexpected missing entry %q", m)
		}
	}
	if missing := checkRequired(cur, " , ,"); len(missing) != 0 {
		t.Errorf("blank spec entries counted: %v", missing)
	}
}

func TestParseRowWithCustomMetrics(t *testing.T) {
	// The testing package sorts custom metrics alphabetically, so a
	// ReportMetric unit can land between ns/op and the -benchmem columns;
	// the tokenizing parser must keep everything after it.
	line := "BenchmarkMillionSink/100k-8 \t 1\t4123456789 ns/op\t 512.5 peak-rss-MB\t 120034 B/op\t 1507 allocs/op"
	name, e, ok := parseRow(line)
	if !ok {
		t.Fatal("row not parsed")
	}
	if name != "BenchmarkMillionSink/100k" {
		t.Fatalf("name = %q", name)
	}
	if e.Iterations != 1 || e.NsPerOp != 4123456789 || e.BytesPerOp != 120034 || e.AllocsPerOp != 1507 {
		t.Fatalf("fields wrong: %+v", e)
	}
	if e.Extra["peak-rss-MB"] != 512.5 {
		t.Fatalf("Extra = %v", e.Extra)
	}
}

func TestParseRowRejectsNonRows(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tcontango\t10.5s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkNoNs-8 3 77 widgets/op",
		"",
	} {
		if _, _, ok := parseRow(line); ok {
			t.Errorf("parsed non-row %q", line)
		}
	}
}

func TestCompareGatesMemory(t *testing.T) {
	mk := func(entries map[string]Entry) *Snapshot { return &Snapshot{Benchmarks: entries} }
	base := mk(map[string]Entry{
		"BenchmarkBig":  {NsPerOp: 1e9, BytesPerOp: 1e6, AllocsPerOp: 1e4},
		"BenchmarkTiny": {NsPerOp: 1e9, BytesPerOp: 100, AllocsPerOp: 10},
	})
	cur := mk(map[string]Entry{
		// ns/op unchanged, memory regressed 2x: both dimensions must gate.
		"BenchmarkBig": {NsPerOp: 1e9, BytesPerOp: 2e6, AllocsPerOp: 2e4},
		// Tiny memory baselines only warn.
		"BenchmarkTiny": {NsPerOp: 1e9, BytesPerOp: 300, AllocsPerOp: 40},
	})
	regs, notes := compare(base, cur, 0.30, 1e7, "")
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want B/op and allocs/op for BenchmarkBig", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "BenchmarkBig") {
			t.Fatalf("unexpected regression %q", r)
		}
	}
	floorNotes := 0
	for _, n := range notes {
		if strings.Contains(n, "BenchmarkTiny") && strings.Contains(n, "below gating floor") {
			floorNotes++
		}
	}
	if floorNotes != 2 {
		t.Fatalf("tiny-baseline notes = %d, want 2 (%v)", floorNotes, notes)
	}
	// Within threshold: quiet.
	ok := mk(map[string]Entry{
		"BenchmarkBig":  {NsPerOp: 1e9, BytesPerOp: 1.2e6, AllocsPerOp: 1.1e4},
		"BenchmarkTiny": {NsPerOp: 1e9, BytesPerOp: 100, AllocsPerOp: 10},
	})
	if regs, _ := compare(base, ok, 0.30, 1e7, ""); len(regs) != 0 {
		t.Fatalf("in-threshold memory drift gated: %v", regs)
	}
}
