// Command benchci turns `go test -bench` output into a machine-readable
// JSON snapshot and gates CI on it: it fails when any benchmark regressed
// by more than a threshold against a committed baseline, and can require a
// minimum speedup ratio between two named benchmarks (used to pin the
// incremental evaluator's advantage over the full re-evaluation path).
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run '^$' . | \
//	    benchci -out BENCH_ci.json -baseline BENCH_baseline.json \
//	            -threshold 0.30 -speedup 'BenchmarkEvalPhase/full,BenchmarkEvalPhase/incremental,2'
//
// Refresh the baseline by regenerating it from a bench run:
//
//	go test -bench=. -benchmem -benchtime=1x -run '^$' . | benchci -out BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement. Extra holds custom b.ReportMetric
// units (e.g. "peak-rss-MB") that rows may emit in any position.
type Entry struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the JSON shape of a bench run (BENCH_*.json).
type Snapshot struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchName matches a result row's leading name column, e.g.
// "BenchmarkFoo/sub-8" (the -8 GOMAXPROCS suffix is stripped).
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?$`)

// parseRow tokenizes one result row into value/unit pairs. Unlike a fixed
// "ns/op [B/op] [allocs/op]" pattern, this survives custom b.ReportMetric
// units appearing in any position — the testing package sorts metrics
// alphabetically, so "peak-rss-MB" lands between ns/op and the -benchmem
// columns and a positional regexp would silently drop everything after it.
func parseRow(line string) (name string, e Entry, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return "", Entry{}, false
	}
	m := benchName.FindStringSubmatch(f[0])
	if m == nil {
		return "", Entry{}, false
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return "", Entry{}, false
	}
	e = Entry{Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
			seenNs = true
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = v
		}
	}
	if !seenNs {
		return "", Entry{}, false
	}
	return m[1], e, true
}

func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if name, e, ok := parseRow(line); ok {
			snap.Benchmarks[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchci: no benchmark results found in input")
	}
	return snap, nil
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("benchci: %s: %w", path, err)
	}
	return &snap, nil
}

// compare fails (returns messages) for every benchmark whose ns/op grew by
// more than threshold versus the baseline. Benchmarks faster than minNs in
// the baseline are informational only: at -benchtime=1x their jitter
// routinely exceeds any sane threshold.
//
// When normalize names a reference benchmark, each snapshot's timings are
// first divided by that snapshot's own reference timing, so a uniformly
// faster or slower CI machine cancels out and only the benchmark's cost
// relative to its peers is gated. The floor still applies to raw times.
func compare(base, cur *Snapshot, threshold, minNs float64, normalize string) (regressions, notes []string) {
	baseScale, curScale := 1.0, 1.0
	if normalize != "" {
		b, okB := base.Benchmarks[normalize]
		c, okC := cur.Benchmarks[normalize]
		if okB && okC && b.NsPerOp > 0 && c.NsPerOp > 0 {
			baseScale, curScale = b.NsPerOp, c.NsPerOp
			notes = append(notes, fmt.Sprintf("normalizing by %s (baseline %.0f ns/op, current %.0f ns/op)",
				normalize, b.NsPerOp, c.NsPerOp))
		} else {
			notes = append(notes, fmt.Sprintf("normalization benchmark %s unavailable; comparing raw times", normalize))
		}
	}
	for name, b := range base.Benchmarks {
		if name == normalize {
			continue // the yardstick cannot gate itself
		}
		c, ok := cur.Benchmarks[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("benchmark %s missing from current run", name))
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := (c.NsPerOp/curScale)/(b.NsPerOp/baseScale) - 1
		line := fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% normalized)", name, b.NsPerOp, c.NsPerOp, 100*ratio)
		if ratio > threshold {
			if b.NsPerOp < minNs && c.NsPerOp < minNs*(1+threshold) {
				notes = append(notes, line+" [below gating floor]")
			} else {
				regressions = append(regressions, line)
			}
		}
		// Memory gates: bytes/op and allocs/op regress deterministically
		// (no machine-speed normalization, same threshold). Tiny baselines
		// stay informational — a few dozen allocations of jitter would
		// otherwise trip the gate.
		memDims := []struct {
			unit      string
			base, cur float64
			floorBase float64
		}{
			{"B/op", b.BytesPerOp, c.BytesPerOp, 16 * 1024},
			{"allocs/op", b.AllocsPerOp, c.AllocsPerOp, 200},
		}
		for _, dim := range memDims {
			if dim.base <= 0 {
				continue // baseline predates -benchmem capture for this row
			}
			r := dim.cur/dim.base - 1
			if r <= threshold {
				continue
			}
			mline := fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%%)", name, dim.base, dim.cur, dim.unit, 100*r)
			if dim.base < dim.floorBase {
				notes = append(notes, mline+" [below gating floor]")
				continue
			}
			regressions = append(regressions, mline)
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			notes = append(notes, fmt.Sprintf("benchmark %s is new (not in baseline)", name))
		}
	}
	return regressions, notes
}

// parseExtraGates parses the -extra-gate spec: comma-separated "key:pct"
// items, where key is a custom b.ReportMetric unit and pct is the signed
// allowed drift vs the baseline. A positive pct gates increases (the
// metric may grow at most pct percent — sizes, where bigger is worse); a
// negative pct gates decreases (the metric may shrink at most |pct|
// percent — ratios like full-vs-eco-x, where smaller is worse).
func parseExtraGates(spec string) (map[string]float64, error) {
	gates := map[string]float64{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		i := strings.LastIndex(item, ":")
		if i <= 0 || i == len(item)-1 {
			return nil, fmt.Errorf("benchci: -extra-gate wants 'key:pct', got %q", item)
		}
		pct, err := strconv.ParseFloat(item[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("benchci: bad -extra-gate percentage %q: %w", item[i+1:], err)
		}
		gates[item[:i]] = pct
	}
	return gates, nil
}

// compareExtra diffs custom metrics (Extra) against the baseline. Extra
// metrics are warn-only by default — a drifted value prints a note, never
// fails the run — because most of them (peak RSS, speedup ratios) are
// noisier than ns/op at -benchtime=1x. Keys named in gates are opted into
// gating with a per-key signed threshold (see parseExtraGates).
func compareExtra(base, cur *Snapshot, gates map[string]float64) (regressions, notes []string) {
	const warnDrift = 0.30
	for name, b := range base.Benchmarks {
		c, ok := cur.Benchmarks[name]
		if !ok {
			continue // compare already noted the missing row
		}
		for unit, bv := range b.Extra {
			cv, ok := c.Extra[unit]
			if !ok || bv <= 0 {
				continue
			}
			rel := cv/bv - 1
			line := fmt.Sprintf("%s: %.2f -> %.2f %s (%+.1f%%)", name, bv, cv, unit, 100*rel)
			if pct, gated := gates[unit]; gated {
				if (pct >= 0 && rel > pct/100) || (pct < 0 && rel < pct/100) {
					regressions = append(regressions, line)
					continue
				}
			}
			if rel > warnDrift || rel < -warnDrift {
				notes = append(notes, line+" [extra metric, warn-only]")
			}
		}
	}
	return regressions, notes
}

// checkRequired returns one message per benchmark named in the
// comma-separated spec that is missing from the current snapshot. It backs
// the plan-matrix smoke gate: CI requires the named plan benchmarks to
// have actually run (a plan that fails to synthesize produces no result
// row, which would otherwise pass silently as "nothing regressed").
func checkRequired(cur *Snapshot, spec string) []string {
	var missing []string
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := cur.Benchmarks[name]; !ok {
			missing = append(missing, fmt.Sprintf("required benchmark %s missing from current run", name))
		}
	}
	return missing
}

// checkSpeedup enforces spec "slowName,fastName,minRatio": the slow
// benchmark must cost at least minRatio times the fast one.
func checkSpeedup(cur *Snapshot, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("benchci: -speedup wants 'slow,fast,minRatio', got %q", spec)
	}
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("benchci: bad -speedup ratio %q: %w", parts[2], err)
	}
	slow, ok := cur.Benchmarks[parts[0]]
	if !ok {
		return fmt.Errorf("benchci: -speedup benchmark %q not found", parts[0])
	}
	fast, ok := cur.Benchmarks[parts[1]]
	if !ok {
		return fmt.Errorf("benchci: -speedup benchmark %q not found", parts[1])
	}
	if fast.NsPerOp <= 0 {
		return fmt.Errorf("benchci: %q measured 0 ns/op", parts[1])
	}
	ratio := slow.NsPerOp / fast.NsPerOp
	fmt.Printf("benchci: speedup %s / %s = %.1fx (required >= %.1fx)\n", parts[0], parts[1], ratio, min)
	if ratio < min {
		return fmt.Errorf("benchci: speedup %.2fx below required %.2fx", ratio, min)
	}
	return nil
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "write the parsed snapshot as JSON to this path")
	baseline := flag.String("baseline", "", "committed BENCH_baseline.json to gate against")
	threshold := flag.Float64("threshold", 0.30, "max allowed ns/op regression vs the baseline (0.30 = +30%)")
	minNs := flag.Float64("min-ns", 1e7, "baseline ns/op floor below which regressions only warn")
	normalize := flag.String("normalize", "", "reference benchmark; both snapshots are rescaled by its timing to cancel machine-speed differences")
	speedup := flag.String("speedup", "", "require 'slowBench,fastBench,minRatio' in the current run")
	require := flag.String("require", "", "comma-separated benchmarks that must be present in the current run (smoke gate)")
	extraGate := flag.String("extra-gate", "", "gate custom metrics vs the baseline: comma-separated 'key:pct' with signed drift "+
		"(e.g. 'full-vs-eco-x:-20' fails a >20% ratio drop; ungated custom metrics stay warn-only)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	cur, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchci: wrote %s (%d benchmarks)\n", *out, len(cur.Benchmarks))
	}
	gates, err := parseExtraGates(*extraGate)
	if err != nil {
		fatal(err)
	}
	failed := false
	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			fatal(err)
		}
		regressions, notes := compare(base, cur, *threshold, *minNs, *normalize)
		xr, xn := compareExtra(base, cur, gates)
		regressions = append(regressions, xr...)
		notes = append(notes, xn...)
		for _, n := range notes {
			fmt.Println("benchci: note:", n)
		}
		for _, r := range regressions {
			fmt.Println("benchci: REGRESSION:", r)
			failed = true
		}
		if len(regressions) == 0 {
			fmt.Printf("benchci: %d benchmarks within %.0f%% of baseline\n", len(cur.Benchmarks), 100**threshold)
		}
	}
	if *require != "" {
		if missing := checkRequired(cur, *require); len(missing) > 0 {
			for _, m := range missing {
				fmt.Println("benchci: MISSING:", m)
			}
			failed = true
		} else {
			fmt.Println("benchci: all required benchmarks present")
		}
	}
	if *speedup != "" {
		if err := checkSpeedup(cur, *speedup); err != nil {
			fmt.Println(err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
