// Command contangod serves the Contango synthesizer over HTTP: submit
// jobs and parameter-sweep batches, poll status, stream progress, fetch
// metrics and SVG renderings. See internal/service.Server for the API.
//
// Example:
//
//	contangod -addr :8080 -workers 4 &
//	curl -s localhost:8080/api/v1/jobs -d '{"bench":"ispd09f22"}'
//	curl -s localhost:8080/api/v1/jobs/job-0001
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"contango/internal/flow"
	"contango/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	queue := flag.Int("queue", 4096, "max queued jobs")
	parallel := flag.Int("parallel", 0, "per-job stage-simulation workers for jobs that don't set one (0 = GOMAXPROCS/workers)")
	plan := flag.String("plan", "", "default synthesis plan for jobs that don't set one (built-in name or plan spec; empty = paper)")
	verbose := flag.Bool("v", false, "log job lifecycle to stderr")
	flag.Parse()

	if _, err := flow.ResolvePlan(*plan); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := service.Config{Workers: *workers, CacheEntries: *cache, QueueDepth: *queue,
		JobParallelism: *parallel, DefaultPlan: *plan}
	logf := func(f string, a ...interface{}) {
		fmt.Fprintf(os.Stderr, time.Now().Format("15:04:05.000 ")+f+"\n", a...)
	}
	if *verbose {
		cfg.Log = logf
	}
	svc := service.New(cfg)
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-stop
		logf("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		svc.CancelAll()
		svc.Close()
	}()

	logf("contangod listening on %s (%d workers, %d cache entries)", *addr, *workers, *cache)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the drain,
	// job cancellation and worker-pool teardown to actually finish.
	<-drained
}
