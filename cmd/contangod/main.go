// Command contangod serves the Contango synthesizer over HTTP: submit
// jobs and parameter-sweep batches, poll status, stream progress, fetch
// metrics, SVG renderings and persisted artifacts. See
// internal/service.Server for the API.
//
// With -data-dir the daemon is durable: finished results persist in a
// content-addressed store (a restart serves them as disk-backed cache
// hits), queued-but-unfinished jobs are journaled and re-run after a
// crash or redeploy, and SIGTERM drains gracefully — intake stops, jobs
// get a grace period, and whatever is still unfinished is journaled as
// pending for the next start.
//
// Observability: /metrics exposes the service's counters in the
// Prometheus text format, every job builds a flow trace served as its
// "trace" artifact, logs are structured (-log-format json flips them to
// JSON lines), and -debug-addr starts a side listener with the pprof
// profiling endpoints.
//
// Example:
//
//	contangod -addr :8080 -workers 4 -data-dir /var/lib/contango &
//	curl -s localhost:8080/api/v1/jobs -d '{"bench":"ispd09f22"}'
//	curl -s localhost:8080/api/v1/jobs/job-0001
//	curl -s localhost:8080/api/v1/jobs/job-0001/artifacts
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"contango/internal/corners"
	"contango/internal/flow"
	"contango/internal/obs"
	"contango/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size")
	cache := flag.Int("cache", 256, "result-cache entries in memory (negative disables caching)")
	queue := flag.Int("queue", 4096, "max queued jobs")
	parallel := flag.Int("parallel", 0, "per-job stage-simulation workers for jobs that don't set one (0 = GOMAXPROCS/workers)")
	plan := flag.String("plan", "", "default synthesis plan for jobs that don't set one (built-in name or plan spec; empty = paper)")
	cornerSpec := flag.String("corners", "", "default PVT corner set for jobs that don't set one (ispd09, pvt5, or mc:<n>:<seed>[:sigmas]; empty = ispd09)")
	sched := flag.String("sched", service.SchedulerPack, "job scheduler: pack (cost-model packing with deadlines and sweep splitting) or fifo")
	maxWait := flag.Duration("max-wait", 0, "reject submissions when the estimated queue wait exceeds this (429 + Retry-After; 0 = no bound; pack scheduler only)")
	split := flag.Int("split", 0, "max corners per worker-slot tenure before a sweep yields to waiting jobs (0 = default 16, negative disables; pack scheduler only)")
	dataDir := flag.String("data-dir", "", "durable storage directory: persists results/logs/SVGs and recovers unfinished jobs across restarts (empty = in-memory only)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown grace period for in-flight jobs")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	debugAddr := flag.String("debug-addr", "", "optional side listener with pprof endpoints (/debug/pprof/) and /metrics (e.g. localhost:6060)")
	verbose := flag.Bool("v", false, "shorthand for -log-level debug (per-job lifecycle detail)")
	flag.Parse()

	level := *logLevel
	if *verbose {
		level = "debug"
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fail := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	if _, err := flow.ResolvePlan(*plan); err != nil {
		fail(err)
	}
	if err := corners.Validate(*cornerSpec); err != nil {
		fail(err)
	}
	cfg := service.Config{Workers: *workers, CacheEntries: *cache, QueueDepth: *queue,
		JobParallelism: *parallel, DefaultPlan: *plan, DefaultCorners: *cornerSpec,
		DataDir: *dataDir, Logger: logger,
		Scheduler: *sched, MaxQueueWait: *maxWait, SplitCorners: *split}
	svc, err := service.Open(cfg)
	if err != nil {
		fail(err)
	}
	if *dataDir != "" {
		// Recovery is worth a line even at info level: it explains why a
		// fresh process may already be running jobs.
		logger.Info("durable store open",
			"data_dir", *dataDir,
			"recovered_jobs", svc.Stats().RecoveredJobs)
	}
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc)}

	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dm.Handle("/metrics", svc.MetricsRegistry().Handler())
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dm); err != nil {
				logger.Error("debug listener failed", "error", err.Error())
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-stop
		logger.Info("shutting down", "grace", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// HTTP and service drain concurrently: srv.Shutdown blocks on
		// active handlers, and an SSE watcher of a running job only
		// disconnects once the service finishes that job — sequencing the
		// two would let one connected client burn the whole grace period
		// before any job got a chance to drain.
		httpDone := make(chan struct{})
		go func() {
			defer close(httpDone)
			_ = srv.Shutdown(ctx)
		}()
		// Graceful service stop: intake is closed, in-flight jobs get the
		// grace period, stragglers are journaled as pending so the next
		// start re-queues them.
		svc.Shutdown(ctx)
		<-httpDone
		_ = srv.Close() // drop any streaming connections that outlived the drain
		st := svc.Stats()
		logger.Info("final stats",
			"jobs", st.Jobs, "completed", st.Completed, "failed", st.Failed,
			"canceled", st.Canceled, "cache_hits", st.CacheHits, "disk_hits", st.DiskHits,
			"cache_misses", st.CacheMisses, "cache_evictions", st.CacheEvictions)
	}()

	logger.Info("contangod listening",
		"addr", *addr, "workers", *workers, "cache_entries", *cache, "scheduler", cfg.Scheduler)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the drain,
	// pending-job journaling and worker-pool teardown to actually finish.
	<-drained
}
