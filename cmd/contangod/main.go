// Command contangod serves the Contango synthesizer over HTTP: submit
// jobs and parameter-sweep batches, poll status, stream progress, fetch
// metrics, SVG renderings and persisted artifacts. See
// internal/service.Server for the API.
//
// With -data-dir the daemon is durable: finished results persist in a
// content-addressed store (a restart serves them as disk-backed cache
// hits), queued-but-unfinished jobs are journaled and re-run after a
// crash or redeploy, and SIGTERM drains gracefully — intake stops, jobs
// get a grace period, and whatever is still unfinished is journaled as
// pending for the next start.
//
// Example:
//
//	contangod -addr :8080 -workers 4 -data-dir /var/lib/contango &
//	curl -s localhost:8080/api/v1/jobs -d '{"bench":"ispd09f22"}'
//	curl -s localhost:8080/api/v1/jobs/job-0001
//	curl -s localhost:8080/api/v1/jobs/job-0001/artifacts
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"contango/internal/corners"
	"contango/internal/flow"
	"contango/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size")
	cache := flag.Int("cache", 256, "result-cache entries in memory (negative disables caching)")
	queue := flag.Int("queue", 4096, "max queued jobs")
	parallel := flag.Int("parallel", 0, "per-job stage-simulation workers for jobs that don't set one (0 = GOMAXPROCS/workers)")
	plan := flag.String("plan", "", "default synthesis plan for jobs that don't set one (built-in name or plan spec; empty = paper)")
	cornerSpec := flag.String("corners", "", "default PVT corner set for jobs that don't set one (ispd09, pvt5, or mc:<n>:<seed>[:sigmas]; empty = ispd09)")
	dataDir := flag.String("data-dir", "", "durable storage directory: persists results/logs/SVGs and recovers unfinished jobs across restarts (empty = in-memory only)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown grace period for in-flight jobs")
	verbose := flag.Bool("v", false, "log job lifecycle to stderr")
	flag.Parse()

	if _, err := flow.ResolvePlan(*plan); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := corners.Validate(*cornerSpec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := service.Config{Workers: *workers, CacheEntries: *cache, QueueDepth: *queue,
		JobParallelism: *parallel, DefaultPlan: *plan, DefaultCorners: *cornerSpec, DataDir: *dataDir}
	logf := func(f string, a ...interface{}) {
		fmt.Fprintf(os.Stderr, time.Now().Format("15:04:05.000 ")+f+"\n", a...)
	}
	if *verbose {
		cfg.Log = logf
	}
	svc, err := service.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		// Recovery is worth a line even without -v: it explains why a fresh
		// process may already be running jobs.
		st := svc.Stats()
		logf("durable store at %s: recovered %d unfinished job(s) from the journal",
			*dataDir, st.RecoveredJobs)
	}
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-stop
		logf("shutting down (grace %v)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// HTTP and service drain concurrently: srv.Shutdown blocks on
		// active handlers, and an SSE watcher of a running job only
		// disconnects once the service finishes that job — sequencing the
		// two would let one connected client burn the whole grace period
		// before any job got a chance to drain.
		httpDone := make(chan struct{})
		go func() {
			defer close(httpDone)
			_ = srv.Shutdown(ctx)
		}()
		// Graceful service stop: intake is closed, in-flight jobs get the
		// grace period, stragglers are journaled as pending so the next
		// start re-queues them.
		svc.Shutdown(ctx)
		<-httpDone
		_ = srv.Close() // drop any streaming connections that outlived the drain
		if *verbose {
			st := svc.Stats()
			logf("final stats: %d jobs (%d completed, %d failed, %d canceled), "+
				"%d cache hits (%d from disk), %d misses, %d evictions",
				st.Jobs, st.Completed, st.Failed, st.Canceled,
				st.CacheHits, st.DiskHits, st.CacheMisses, st.CacheEvictions)
		}
	}()

	logf("contangod listening on %s (%d workers, %d cache entries)", *addr, *workers, *cache)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the drain,
	// pending-job journaling and worker-pool teardown to actually finish.
	<-drained
}
