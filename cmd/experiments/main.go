// Command experiments regenerates the paper's tables on the synthetic
// benchmark suites. Each table prints our measured values next to the
// paper's published reference numbers, so shape comparisons (who wins, what
// improves at each stage) are immediate. See EXPERIMENTS.md for discussion.
//
//	experiments -table 1          # Table I  : composite inverter analysis
//	experiments -table 2          # Table II : inverted sinks vs added inverters
//	experiments -table 3          # Table III: per-stage CLR/skew progress
//	experiments -table 4          # Table IV : Contango vs contest-style baselines
//	experiments -table 5 -max 5000# Table V  : TI scalability
//	experiments -table ablation   # composite 8x-small vs large-inverter mode
//	experiments -table all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/eval"
	"contango/internal/tech"
)

var (
	flagTable = flag.String("table", "all", "which table to regenerate: 1,2,3,4,5,ablation,all")
	flagMax   = flag.Int("max", 10000, "largest TI sample size for table 5")
	flagFast  = flag.Bool("fast", false, "coarser simulation settings")
	flagV     = flag.Bool("v", false, "verbose flow logging")
)

func main() {
	flag.Parse()
	switch *flagTable {
	case "1":
		table1()
	case "2":
		table2()
	case "3":
		table3()
	case "4":
		table4()
	case "5":
		table5()
	case "ablation":
		ablation()
	case "all":
		table1()
		table2()
		table3()
		table4()
		table5()
		ablation()
	default:
		fmt.Fprintln(os.Stderr, "unknown table", *flagTable)
		os.Exit(1)
	}
}

func opts() core.Options {
	o := core.Options{FastSim: *flagFast}
	if *flagV {
		o.Log = func(f string, a ...interface{}) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	return o
}

func f(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

func table1() {
	fmt.Println("== Table I: inverter analysis (paper values reproduced exactly by the technology model) ==")
	tk := tech.Default45()
	var rows [][]string
	for _, r := range tk.TableI() {
		rows = append(rows, []string{r.Label, f(r.Cin, 1), f(r.Cout, 1), f(r.Rout*1000, 1)})
	}
	fmt.Println(eval.Table([]string{"Inverter", "Cin fF", "Cout fF", "Rout Ω"}, rows))
	fmt.Println("Non-dominated composite ladder (dynamic programming):")
	for _, c := range tk.CompositeLadder()[:8] {
		fmt.Printf("  %-12v Cin=%6.1f fF  Rout=%6.1f Ω\n", c, c.Cin(), c.Rout()*1000)
	}
	fmt.Println()
}

// paperTable2 gives the paper's published (inverted sinks, added inverters).
var paperTable2 = map[string][2]int{
	"ispd09f11": {77, 9}, "ispd09f12": {71, 7}, "ispd09f21": {46, 8},
	"ispd09f22": {57, 9}, "ispd09f31": {140, 16}, "ispd09f32": {47, 13},
	"ispd09fnb1": {153, 2},
}

func table2() {
	fmt.Println("== Table II: inverted sinks after buffer insertion vs polarity-correcting inverters ==")
	var rows [][]string
	for _, name := range bench.ISPD09Names() {
		b, _ := bench.ISPD09(name)
		res, err := core.SynthesizeBaseline(b, core.BaselineNoOpt, opts())
		if err != nil {
			fmt.Fprintln(os.Stderr, name, err)
			continue
		}
		p := paperTable2[name]
		rows = append(rows, []string{
			name,
			fmt.Sprint(res.InvertedSinks), fmt.Sprint(p[0]),
			fmt.Sprint(res.AddedInverters), fmt.Sprint(p[1]),
		})
	}
	fmt.Println(eval.Table(
		[]string{"benchmark", "inverted", "paper-inverted", "added", "paper-added"}, rows))
	fmt.Println("Shape check: added << inverted on every benchmark (Proposition 2 minimality).")
	fmt.Println()
}

// paperTable3 holds the paper's (CLR, skew) per stage for reference.
var paperTable3 = map[string]map[string][2]float64{
	"ispd09f22": {
		"INITIAL": {52.01, 31.55}, "TBSZ": {43.16, 33.65}, "TWSZ": {16.35, 6.933},
		"TWSN": {12.58, 1.99}, "BWSN": {12.36, 2.227},
	},
	"ispd09fnb1": {
		"INITIAL": {31.86, 21.15}, "TBSZ": {31.54, 21.13}, "TWSZ": {30.75, 20.44},
		"TWSN": {13.94, 3.149}, "BWSN": {13.40, 3.5},
	},
}

func table3() {
	fmt.Println("== Table III: progress achieved by individual flow stages (ours / paper reference) ==")
	for _, name := range bench.ISPD09Names() {
		b, _ := bench.ISPD09(name)
		t0 := time.Now()
		res, err := core.Synthesize(b, opts())
		if err != nil {
			fmt.Fprintln(os.Stderr, name, err)
			continue
		}
		fmt.Printf("-- %s (%d sinks, %v, %d accurate runs)\n", name, len(b.Sinks),
			time.Since(t0).Round(time.Millisecond), res.Runs)
		var rows [][]string
		for _, st := range res.Stages {
			row := []string{st.Name, f(st.Metrics.CLR, 2), f(st.Metrics.Skew, 3)}
			if ref, ok := paperTable3[name][st.Name]; ok {
				row = append(row, f(ref[0], 2), f(ref[1], 3))
			} else {
				row = append(row, "-", "-")
			}
			rows = append(rows, row)
		}
		fmt.Println(eval.Table(
			[]string{"stage", "CLR ps", "skew ps", "paper CLR", "paper skew"}, rows))
	}
	fmt.Println()
}

// paperTable4 holds the paper's CLR (ps) and cap (% of limit) per benchmark:
// Contango vs the best contest entries.
var paperTable4 = map[string][2]float64{
	"ispd09f11": {13.36, 99.61}, "ispd09f12": {15.27, 99.99},
	"ispd09f21": {17.40, 96.74}, "ispd09f22": {12.36, 97.43},
	"ispd09f31": {12.81, 98.29}, "ispd09f32": {17.92, 99.24},
	"ispd09fnb1": {13.40, 78.38},
}

func table4() {
	fmt.Println("== Table IV: Contango vs contest-style baseline flows ==")
	var rows [][]string
	var sumC, sumG, sumB, sumN float64
	count := 0
	for _, name := range bench.ISPD09Names() {
		b, _ := bench.ISPD09(name)
		full, err := core.Synthesize(b, opts())
		if err != nil {
			fmt.Fprintln(os.Stderr, name, err)
			continue
		}
		row := []string{name,
			f(full.Final.Skew, 2), f(full.Final.CLR, 1), f(full.Final.CapPct, 1)}
		var skews []float64
		for _, kind := range []core.BaselineKind{core.BaselineNoOpt, core.BaselineGreedy, core.BaselineBST} {
			base, err := core.SynthesizeBaseline(b, kind, opts())
			if err != nil {
				row = append(row, "fail")
				skews = append(skews, 0)
				continue
			}
			row = append(row, f(base.Final.Skew, 2))
			skews = append(skews, base.Final.Skew)
		}
		p := paperTable4[name]
		row = append(row, f(p[0], 2), f(p[1], 1))
		rows = append(rows, row)
		sumC += full.Final.Skew
		sumN += skews[0]
		sumG += skews[1]
		sumB += skews[2]
		count++
	}
	fmt.Println(eval.Table([]string{
		"benchmark", "skew", "CLR", "cap%", "noopt-skew", "greedy-skew", "bst-skew",
		"paper-CLR", "paper-cap%"}, rows))
	if count > 0 && sumC > 0 {
		fmt.Printf("Average skew ratios vs Contango: noopt %.2fx, greedy %.2fx, bst %.2fx"+
			" (paper beat contest entries by 2.15-3.99x on CLR)\n\n",
			sumN/sumC, sumG/sumC, sumB/sumC)
	}
}

// paperTable5 holds (CLR, skew, latency, cap pF, runs) from the paper.
var paperTable5 = map[int][5]float64{
	200: {13.47, 2.124, 506.8, 52.21, 21}, 500: {14.84, 2.174, 528.0, 99.53, 20},
	1000: {17.53, 3.138, 543.1, 162.3, 20}, 2000: {16.56, 3.136, 543.9, 276.1, 15},
	5000: {23.20, 3.853, 538.5, 591.1, 22}, 10000: {25.54, 5.562, 538.0, 1130, 23},
	20000: {32.47, 10.46, 546.8, 2243, 35}, 50000: {31.52, 8.774, 545.1, 5243, 45},
}

func table5() {
	fmt.Println("== Table V: scalability on TI-style benchmarks (large-inverter mode) ==")
	pool := bench.NewTIPool()
	sizes := []int{200, 500, 1000, 2000, 5000, 10000, 20000, 50000}
	var rows [][]string
	for _, n := range sizes {
		if n > *flagMax {
			fmt.Printf("(skipping %d sinks; raise -max to include)\n", n)
			continue
		}
		b := pool.Sample(n, int64(n))
		o := opts()
		o.LargeInverters = true
		o.FastSim = o.FastSim || n >= 5000
		t0 := time.Now()
		res, err := core.Synthesize(b, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, n, err)
			continue
		}
		p := paperTable5[n]
		rows = append(rows, []string{
			fmt.Sprint(n),
			f(res.Final.CLR, 2), f(p[0], 2),
			f(res.Final.Skew, 3), f(p[1], 3),
			f(res.Final.MaxLatency, 1), f(p[2], 1),
			f(res.Final.TotalCap/1000, 1), f(p[3], 1),
			fmt.Sprint(res.Runs), f(p[4], 0),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	fmt.Println(eval.Table([]string{
		"sinks", "CLR", "pCLR", "skew", "pskew", "lat", "plat",
		"cap pF", "pcap", "runs", "pruns", "time"}, rows))
	fmt.Println("Shape checks: cap scales linearly with sinks; skew stays single-digit ps;")
	fmt.Println("accurate-run count grows slowly with size.")
	fmt.Println()
}

func ablation() {
	fmt.Println("== Ablation: composite 8x-small batches vs large-inverter groups (paper Section V) ==")
	pool := bench.NewTIPool()
	b := pool.Sample(1000, 1000)
	var rows [][]string
	for _, large := range []bool{false, true} {
		o := opts()
		o.LargeInverters = large
		t0 := time.Now()
		res, err := core.Synthesize(b, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		mode := "8x small batches"
		if large {
			mode = "large groups"
		}
		rows = append(rows, []string{
			mode, f(res.Final.CLR, 2), f(res.Final.Skew, 3),
			f(res.Final.TotalCap/1000, 1),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	fmt.Println(eval.Table([]string{"mode", "CLR", "skew", "cap pF", "time"}, rows))
	fmt.Println("Paper: large groups ran ~8x faster at the cost of 1-2 ps CLR/skew and ~15% capacitance.")
}
