// Command doccheck enforces the repo's godoc floor: every package must
// carry a package comment. Library packages need a comment starting with
// the canonical "Package <name>" prefix in at least one non-test file;
// main packages (commands) need any doc comment — by convention here a
// "Command <name>" paragraph describing the binary. Test files are
// exempt, matching godoc, which never renders them.
//
// It is wired into the CI lint job next to gofmt and go vet:
//
//	go run ./cmd/doccheck ./...
//
// With no arguments it checks the current directory tree. Exits nonzero
// listing every undocumented package.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	bad := 0
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		if root == "" {
			root = "."
		}
		for _, msg := range check(root) {
			fmt.Fprintln(os.Stderr, msg)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented package(s)\n", bad)
		os.Exit(1)
	}
}

// pkgDocs accumulates what the checker saw of one directory's package.
type pkgDocs struct {
	name       string // package clause name (last file parsed wins; uniform in valid packages)
	documented bool   // some non-test file carries an acceptable doc comment
	files      int    // non-test .go files seen
}

// check walks root and returns one message per undocumented package.
func check(root string) []string {
	pkgs := map[string]*pkgDocs{} // directory -> findings
	fset := token.NewFileSet()
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Hidden trees and testdata are not part of the build.
			if name := d.Name(); path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		// The package clause and its doc comment are all we need; skipping
		// function bodies keeps the walk cheap on large trees.
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return nil // the build (not doccheck) owns syntax errors
		}
		dir := filepath.Dir(path)
		p := pkgs[dir]
		if p == nil {
			p = &pkgDocs{}
			pkgs[dir] = p
		}
		p.name = f.Name.Name
		p.files++
		if f.Doc == nil {
			return nil
		}
		text := strings.TrimSpace(f.Doc.Text())
		if p.name == "main" {
			p.documented = p.documented || text != ""
		} else {
			p.documented = p.documented || strings.HasPrefix(text, "Package "+p.name+" ")
		}
		return nil
	})

	var dirs []string
	for dir, p := range pkgs {
		if p.files > 0 && !p.documented {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	msgs := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		p := pkgs[dir]
		want := fmt.Sprintf("a doc comment starting %q", "Package "+p.name)
		if p.name == "main" {
			want = "a doc comment describing the command"
		}
		msgs = append(msgs, fmt.Sprintf("%s: package %s has no package comment (want %s in a non-test file)", dir, p.name, want))
	}
	return msgs
}
