package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFlagsUndocumentedPackage(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n")
	// A comment that does not carry the canonical prefix does not count.
	write(t, filepath.Join(dir, "wrongprefix", "w.go"), "// helpers live here\npackage wrongprefix\n")

	msgs := check(dir)
	if len(msgs) != 2 {
		t.Fatalf("check() = %d findings %v, want 2", len(msgs), msgs)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"package bad", "package wrongprefix"} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "package good") {
		t.Errorf("documented package flagged: %q", joined)
	}
}

func TestCheckDocInAnyNonTestFileSuffices(t *testing.T) {
	dir := t.TempDir()
	// The doc comment may live in any file of the package, and test files
	// are exempt both as doc carriers and from the requirement.
	write(t, filepath.Join(dir, "p", "impl.go"), "package p\n")
	write(t, filepath.Join(dir, "p", "doc.go"), "// Package p holds the doc.\npackage p\n")
	write(t, filepath.Join(dir, "q", "q_test.go"), "package q\n")
	if msgs := check(dir); len(msgs) != 0 {
		t.Fatalf("check() = %v, want none", msgs)
	}
}

func TestCheckMainPackageNeedsAnyDoc(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "cmdok", "main.go"), "// Command cmdok does things.\npackage main\n")
	write(t, filepath.Join(dir, "cmdbad", "main.go"), "package main\n")
	msgs := check(dir)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "cmdbad") {
		t.Fatalf("check() = %v, want one finding for cmdbad", msgs)
	}
}

func TestRepoIsFullyDocumented(t *testing.T) {
	// The gate CI runs: the repo's own tree must stay clean.
	if msgs := check("../.."); len(msgs) != 0 {
		t.Fatalf("repo has undocumented packages:\n%s", strings.Join(msgs, "\n"))
	}
}
