// Command cnseval runs a single Clock-Network Evaluation on a benchmark
// using one of the construction flows, without the optimization cascade —
// useful for judging constructions quickly or comparing evaluator models.
//
//	cnseval -bench ispd09f22 -flow noopt
//	cnseval -bench path/to/file.cns -flow greedy -models
package main

import (
	"flag"
	"fmt"
	"os"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/eval"
	"contango/internal/spice"
)

func main() {
	name := flag.String("bench", "ispd09f22", "named benchmark or .cns file")
	flow := flag.String("flow", "noopt", "construction: noopt, greedy, bst")
	models := flag.Bool("models", false, "also compare Elmore / two-pole / transient per-sink latencies")
	flag.Parse()

	b, err := load(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var kind core.BaselineKind
	switch *flow {
	case "noopt":
		kind = core.BaselineNoOpt
	case "greedy":
		kind = core.BaselineGreedy
	case "bst":
		kind = core.BaselineBST
	default:
		fmt.Fprintln(os.Stderr, "unknown flow", *flow)
		os.Exit(1)
	}
	res, err := core.SynthesizeBaseline(b, kind, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s (%s construction): %s\n", b.Name, *flow, res.Final)

	if *models {
		tr := res.Tree
		corner := tr.Tech.Reference()
		evals := []analysis.Evaluator{&analysis.Elmore{}, &analysis.TwoPole{}, spice.New()}
		var rows [][]string
		sinks := tr.Sinks()
		if len(sinks) > 8 {
			sinks = sinks[:8]
		}
		results := map[string]*analysis.Result{}
		for _, e := range evals {
			r, err := e.Evaluate(tr, corner)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			results[e.Name()] = r
		}
		for _, s := range sinks {
			rows = append(rows, []string{
				s.Name,
				fmt.Sprintf("%.1f", results["elmore"].Rise[s.ID]),
				fmt.Sprintf("%.1f", results["twopole"].Rise[s.ID]),
				fmt.Sprintf("%.1f", results["transient"].Rise[s.ID]),
			})
		}
		fmt.Println("\nPer-sink rising latency (ps) by evaluator:")
		fmt.Println(eval.Table([]string{"sink", "elmore", "twopole", "transient"}, rows))
	}
}

func load(name string) (*bench.Benchmark, error) {
	if b, err := bench.ISPD09(name); err == nil {
		return b, nil
	}
	b, err := bench.Load(name)
	if err != nil {
		return nil, fmt.Errorf("not a named benchmark: %w", err)
	}
	return b, nil
}
