// Command contango runs the Contango clock-network synthesis flow on a named
// synthetic benchmark or a benchmark file and prints per-stage metrics.
// With -cache-dir it shares the durable result store used by contangod:
// a run whose (benchmark, options) content address is already on disk is
// served from the store instead of re-synthesized, and fresh runs persist
// their result for the next invocation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/corners"
	"contango/internal/eco"
	"contango/internal/flow"
	"contango/internal/obs"
	"contango/internal/service"
	"contango/internal/store"
)

func main() {
	name := flag.String("bench", "ispd09f22", "named benchmark (ispd09f11..fnb1) or path to a .cns file")
	verbose := flag.Bool("v", false, "shorthand for -log-level debug (logs flow progress)")
	logFormat := flag.String("log-format", "text", "diagnostic log format on stderr: text or json")
	logLevel := flag.String("log-level", "info", "minimum diagnostic log level: debug, info, warn or error")
	fast := flag.Bool("fast", false, "coarser simulation settings for large instances")
	large := flag.Bool("large-inverters", false, "use groups of large inverters (TI mode)")
	svg := flag.String("svg", "", "write the final tree as SVG to this path")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (the contangod wire format)")
	parallel := flag.Int("parallel", 0, "stage-simulation workers for the optimization cascade (0 = all CPUs, 1 = serial)")
	fullEval := flag.Bool("full-eval", false, "disable the incremental evaluation cache (slow reference path, identical results)")
	plan := flag.String("plan", "", "synthesis plan: a built-in name ("+strings.Join(flow.PlanNames(), ", ")+
		") or a plan-spec string like 'tbsz:2,cycle(twsz,twsn)x2'")
	listPlans := flag.Bool("plans", false, "list the built-in synthesis plans and exit")
	cornerSpec := flag.String("corners", "", "PVT corner set: "+strings.Join(corners.Names(), ", ")+
		", or 'mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]]' for Monte Carlo variation samples")
	cacheDir := flag.String("cache-dir", "", "durable result store to reuse prior results from and persist this run's result to (shareable with contangod -data-dir)")
	deadline := flag.Duration("deadline", 0, "soft wall-clock deadline for the run; reported as met or missed on stderr, never kills the run (0 = none)")
	ecoFile := flag.String("eco", "", "ECO delta file: incrementally re-synthesize the -base run with this delta applied (requires -cache-dir and -base; -bench is ignored)")
	baseKey := flag.String("base", "", "content key of the finished base run an -eco delta applies to")
	flag.Parse()

	if *listPlans {
		for _, n := range flow.PlanNames() {
			spec, _ := flow.BuiltinSpec(n)
			fmt.Printf("%-10s %s\n", n, spec)
		}
		return
	}
	level := *logLevel
	if *verbose {
		level = "debug"
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fail := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}
	if _, err := flow.ResolvePlan(*plan); err != nil {
		fail(err)
	}
	if err := corners.Validate(*cornerSpec); err != nil {
		fail(err)
	}

	opt := core.Options{FastSim: *fast, LargeInverters: *large, Parallelism: *parallel, FullEval: *fullEval,
		Plan: *plan, Corners: *cornerSpec}
	if level == "debug" {
		opt.Log = func(f string, a ...interface{}) { logger.Debug(fmt.Sprintf(f, a...)) }
	}

	// The durable store is keyed by the same content address the service
	// uses (JobKey excludes hooks and parallelism), so the one-shot CLI,
	// repeated invocations of itself and a contangod sharing the directory
	// all reuse each other's finished results. It opens before the
	// benchmark resolves because ECO mode reads its benchmark out of the
	// store: the base run's result plus the delta.
	started := time.Now()
	var st *store.Store
	if *cacheDir != "" {
		st, err = store.Open(*cacheDir, true)
		if err != nil {
			fail(err)
		}
	}
	var b *bench.Benchmark
	if *ecoFile != "" {
		b, err = setupECO(st, *ecoFile, *baseKey, &opt)
	} else {
		b, err = loadBench(*name)
	}
	if err != nil {
		fail(err)
	}

	var key string
	var res *core.Result
	if st != nil {
		key = service.JobKey(b, opt)
		if data, gerr := st.Get(service.ResultArtifactKey(key)); gerr == nil {
			if cached, derr := core.DecodeResult(bytes.NewReader(data)); derr == nil {
				res = cached
				logger.Info("reusing cached result",
					"bench", b.Name, "key", key[:12], "cache_dir", *cacheDir)
			}
		}
	}
	if res == nil {
		res, err = core.Synthesize(b, opt)
		if err != nil {
			fail(err)
		}
		if st != nil {
			var buf bytes.Buffer
			perr := core.EncodeResult(&buf, res)
			if perr == nil {
				perr = st.Put(service.ResultArtifactKey(key), buf.Bytes())
			}
			if perr != nil {
				logger.Warn("result not cached", "error", perr.Error())
			} else {
				// The full key is what -eco -base wants back.
				logger.Info("result cached", "bench", b.Name, "key", key, "cache_dir", *cacheDir)
			}
		}
	}
	// The deadline is soft, exactly as in the service scheduler: a miss is
	// reported, never enforced by killing the synthesis.
	if *deadline > 0 {
		if wall := time.Since(started); wall > *deadline {
			logger.Warn("deadline missed", "deadline", deadline.String(), "elapsed", wall.Round(time.Millisecond).String())
		} else {
			logger.Info("deadline met", "deadline", deadline.String(), "elapsed", wall.Round(time.Millisecond).String())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(service.ResultToWire(res)); err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("benchmark %s: %d sinks, %d buffers (%v), %d simulator runs, %v\n",
			b.Name, len(b.Sinks), res.Buffers, res.Composite, res.Runs, res.Elapsed.Round(1e6))
		if res.StageSims+res.StageReuses > 0 {
			fmt.Printf("incremental CNE: %d stage sims, %d cache hits (%.0f%% reused)\n",
				res.StageSims, res.StageReuses,
				100*float64(res.StageReuses)/float64(res.StageSims+res.StageReuses))
		}
		fmt.Printf("legalization: %v\n", res.Legalization)
		fmt.Printf("polarity: %d inverted sinks -> %d added inverters\n", res.InvertedSinks, res.AddedInverters)
		for _, s := range res.Stages {
			fmt.Printf("%-8s %s\n", s.Name, s.Metrics)
		}
		// Per-corner breakdown for non-default corner sets; the contest
		// pair keeps the compact single-line report above.
		if fm := res.Final; len(fm.PerCorner) > 2 {
			fmt.Printf("corner spread: clr-spread=%.2fps worst-corner=%s\n", fm.CLRSpread, fm.WorstCorner)
			for _, c := range fm.PerCorner {
				fmt.Printf("  %-16s vdd=%.3fV lat=[%.1f..%.1f]ps skew=%.3fps slew=%.1fps viol=%d\n",
					c.Name, c.Vdd, c.MinLat, c.MaxLat, c.Skew, c.MaxSlew, c.SlewViol)
			}
			if fm.MCSamples > 0 {
				fmt.Printf("variation: %d samples, yield=%.1f%% lat-p50=%.1fps lat-p95=%.1fps\n",
					fm.MCSamples, 100*fm.Yield, fm.LatP50, fm.LatP95)
			}
		}
	}
	if *svg != "" {
		if err := writeSVG(res, *svg); err != nil {
			fail(err)
		}
		// Keep stdout pure JSON when -json is set.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprintf(out, "wrote %s\n", *svg)
	}
}

// setupECO resolves an incremental run: it loads the base run's result
// from the store, applies the delta file to the base benchmark, and fills
// opt with the ECO spec (defaulting the plan to the "eco" builtin). The
// returned benchmark is the perturbed one — the extended content key then
// caches the ECO result like any other run.
func setupECO(st *store.Store, ecoFile, baseKey string, opt *core.Options) (*bench.Benchmark, error) {
	if st == nil {
		return nil, fmt.Errorf("-eco requires -cache-dir: the base result lives in the durable store")
	}
	if baseKey == "" {
		return nil, fmt.Errorf("-eco requires -base with the base run's content key")
	}
	data, err := st.Get(service.ResultArtifactKey(baseKey))
	if err != nil {
		return nil, fmt.Errorf("base result %s: %w (run the base synthesis with -cache-dir first)", baseKey, err)
	}
	base, err := core.DecodeResult(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("base result %s: %w", baseKey, err)
	}
	f, err := os.Open(ecoFile)
	if err != nil {
		return nil, err
	}
	d, err := eco.ParseDelta(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	b, err := d.Perturb(base.Benchmark)
	if err != nil {
		return nil, err
	}
	if opt.Plan == "" {
		opt.Plan = "eco"
	}
	opt.ECO = &eco.Spec{BaseKey: baseKey, Delta: d, Base: base.Tree,
		Composite: base.Composite, BaseElapsed: base.Elapsed}
	return b, nil
}

func loadBench(name string) (*bench.Benchmark, error) {
	if b, err := bench.ISPD09(name); err == nil {
		return b, nil
	}
	b, err := bench.Load(name)
	if err != nil {
		return nil, fmt.Errorf("not a named benchmark: %w", err)
	}
	return b, nil
}
