package main

import (
	"os"

	"contango"
	"contango/internal/core"
)

// writeSVG renders the final tree with the paper's Figure 3 styling.
func writeSVG(res *core.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return contango.RenderSVG(f, res)
}
