//go:build linux

package contango

import "syscall"

// peakRSSMB reports the process's peak resident set size in MiB. On Linux
// getrusage reports Maxrss in KiB. A zero return means "unavailable" and
// suppresses the benchmark metric.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}
