// Quickstart: synthesize a clock network for one ISPD'09-style benchmark and
// print the per-stage metrics (the paper's Table III row for this chip).
package main

import (
	"fmt"
	"log"

	"contango"
)

func main() {
	b, err := contango.Benchmark("ispd09f22")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesizing %s: %d sinks on a %.0fx%.0f mm die\n",
		b.Name, len(b.Sinks), b.Die.W()/1000, b.Die.H()/1000)

	res, err := contango.Synthesize(b, contango.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d buffers (%v), %d polarity inverters, %d accurate simulator runs\n",
		res.Buffers, res.Composite, res.AddedInverters, res.Runs)
	for _, st := range res.Stages {
		fmt.Printf("  %-8s %s\n", st.Name, st.Metrics)
	}
	fmt.Printf("final: skew %.2f ps, CLR %.1f ps (skew < 20 ps is negligible in industrial practice)\n",
		res.Final.Skew, res.Final.CLR)
}
