// SoC example: a die dominated by pre-designed macros, exercising the
// paper's obstacle machinery — L-shape flips, maze rerouting and the
// contour detour of Figure 2 — and rendering the result like Figure 3
// (wires colored by slow-down slack, sinks as crosses, buffers as boxes).
package main

import (
	"fmt"
	"log"
	"os"

	"contango"
	"contango/internal/bench"
	"contango/internal/dme"
	"contango/internal/geom"
)

func main() {
	// A 6x6 mm SoC with three macros, one pair abutting into a compound
	// obstacle, and register clusters around them.
	b := &bench.Benchmark{
		Name:    "soc-demo",
		Die:     geom.NewRect(0, 0, 6000, 6000),
		Source:  geom.Pt(0, 3000),
		SourceR: 0.1,
		Obstacles: []geom.Obstacle{
			{Rect: geom.NewRect(1500, 1500, 3200, 3000), Name: "cpu"},
			{Rect: geom.NewRect(3200, 1500, 4200, 2500), Name: "l2"}, // abuts cpu
			{Rect: geom.NewRect(1200, 4200, 2600, 5400), Name: "dsp"},
		},
	}
	obs := geom.NewObstacleSet(b.Obstacles)
	fmt.Printf("%d obstacles form %d compounds (abutting macros merge)\n",
		obs.Len(), len(obs.Compounds))

	clusters := []geom.Point{
		{X: 800, Y: 800}, {X: 5000, Y: 1000}, {X: 5200, Y: 4800},
		{X: 3500, Y: 5300}, {X: 4700, Y: 3000}, {X: 700, Y: 2500},
	}
	id := 0
	for _, c := range clusters {
		for dx := -200.0; dx <= 200; dx += 100 {
			for dy := -150.0; dy <= 150; dy += 150 {
				p := geom.Pt(c.X+dx, c.Y+dy)
				if b.Die.Contains(p) && !obs.BlocksPoint(p) {
					b.Sinks = append(b.Sinks, dme.Sink{
						Loc: p, Cap: 30, Name: fmt.Sprintf("ff%d", id)})
					id++
				}
			}
		}
	}
	b.CapLimit = 90000

	res, err := contango.Synthesize(b, contango.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legalization: %v\n", res.Legalization)
	fmt.Printf("final: %s\n", res.Final)

	f, err := os.Create("soc-demo.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := contango.RenderSVG(f, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote soc-demo.svg (Figure 3 styling: red = critical, green = slack)")
}
