// Corner sweep: synthesize one benchmark under each built-in PVT corner
// set — the contest pair, the five-corner envelope, and a Monte Carlo
// variation sample — and compare the envelope each one reports. This is
// the single-process version of what `POST /api/v1/batches` with a
// `sweep.corners` axis fans out across the service's worker pool; swap
// the named benchmark for a benchgen-generated .cns file to analyze a
// synthetic instance.
package main

import (
	"fmt"
	"log"

	"contango"
)

func main() {
	b, err := contango.Benchmark("ispd09f21")
	if err != nil {
		log.Fatal(err)
	}
	// Trim for example runtime: the full cascade on 8 sinks per corner,
	// with a proportionally reduced capacitance budget.
	b.CapLimit *= 8.0 / float64(len(b.Sinks))
	b.Sinks = b.Sinks[:8]

	for _, spec := range []string{"ispd09", "pvt5", "mc:16:7"} {
		res, err := contango.Synthesize(b, contango.Options{Corners: spec, MaxRounds: 2, Cycles: -1})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Final
		fmt.Printf("%-8s %d corners: clr=%.2fps spread=%.2fps worst=%s\n",
			spec, len(m.PerCorner), m.CLR, m.CLRSpread, m.WorstCorner)
		if m.MCSamples > 0 {
			fmt.Printf("         yield=%.0f%% over %d samples, latency p50=%.1fps p95=%.1fps\n",
				100*m.Yield, m.MCSamples, m.LatP50, m.LatP95)
		}
	}
}
