// Scaling example: the paper's Table V protocol in miniature — sample the
// TI-style 135K-location pool at growing sizes and watch capacitance scale
// linearly while skew stays in single-digit picoseconds.
package main

import (
	"fmt"
	"log"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
)

func main() {
	pool := bench.NewTIPool()
	fmt.Printf("TI-style pool: %d candidate sink locations on a %.1fx%.1f mm die\n",
		len(pool.Locs), pool.Die.W()/1000, pool.Die.H()/1000)

	for _, n := range []int{200, 500, 1000} {
		b := pool.Sample(n, int64(n))
		t0 := time.Now()
		res, err := core.Synthesize(b, core.Options{LargeInverters: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d sinks: skew %6.2f ps  CLR %7.1f ps  cap %8.1f pF  %3d runs  %v\n",
			n, res.Final.Skew, res.Final.CLR, res.Final.TotalCap/1000,
			res.Runs, time.Since(t0).Round(time.Millisecond))
	}
}
