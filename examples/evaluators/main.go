// Evaluators example: the paper's Section III-A argument made concrete.
// Closed-form models (Elmore, two-pole) disagree with accurate transient
// simulation by tens of picoseconds — far more than the few-ps skew target —
// which is why Contango drives its optimization loop with accurate runs.
package main

import (
	"fmt"
	"log"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/spice"
)

func main() {
	b, err := bench.ISPD09("ispd09f22")
	if err != nil {
		log.Fatal(err)
	}
	b.Sinks = b.Sinks[:30]
	res, err := core.SynthesizeBaseline(b, core.BaselineNoOpt, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tr := res.Tree
	corner := tr.Tech.Reference()

	evaluators := []analysis.Evaluator{&analysis.Elmore{}, &analysis.TwoPole{}, spice.New()}
	results := map[string]*analysis.Result{}
	for _, e := range evaluators {
		r, err := e.Evaluate(tr, corner)
		if err != nil {
			log.Fatal(err)
		}
		results[e.Name()] = r
	}
	ref := results["transient"]
	fmt.Println("per-evaluator skew and worst |error| vs transient simulation:")
	for _, name := range []string{"elmore", "twopole", "transient"} {
		r := results[name]
		worst := 0.0
		for id, v := range r.Rise {
			if d := v - ref.Rise[id]; d < 0 {
				d = -d
				if d > worst {
					worst = d
				}
			} else if d > worst {
				worst = d
			}
		}
		fmt.Printf("  %-10s skew %7.2f ps   worst sink-latency error %6.2f ps\n",
			name, r.Skew(), worst)
	}
	fmt.Println("\na 5 ps error is 1% of a 500 ps latency but 50% of a 10 ps skew (paper, Section III-A)")
}
