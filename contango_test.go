package contango

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestBenchmarkRegistry(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 7 {
		t.Fatalf("suite size %d want 7", len(names))
	}
	for _, n := range names {
		b, err := Benchmark(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(b.Sinks) == 0 {
			t.Fatalf("%s: no sinks", n)
		}
	}
	if _, err := Benchmark("not-a-benchmark"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestBenchmarkRoundTripThroughPublicAPI(t *testing.T) {
	b, _ := Benchmark("ispd09f22")
	var buf bytes.Buffer
	if err := WriteBenchmark(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchmark(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || len(got.Sinks) != len(b.Sinks) {
		t.Error("round trip mismatch")
	}
}

func TestPublicSynthesizeAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in short mode")
	}
	b, _ := Benchmark("ispd09f22")
	// Keep the sink set small for test runtime.
	b.Sinks = b.Sinks[:24]
	res, err := Synthesize(b, Options{MaxRounds: 3, Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Skew >= res.Stages[0].Metrics.Skew+1e-9 {
		t.Errorf("no improvement: %v -> %v", res.Stages[0].Metrics.Skew, res.Final.Skew)
	}
	var svg bytes.Buffer
	if err := RenderSVG(&svg, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Error("invalid SVG output")
	}

	base, err := SynthesizeBaseline(b, BaselineGreedy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Final.Skew < res.Final.Skew {
		t.Errorf("greedy baseline (%v) beat the full flow (%v)", base.Final.Skew, res.Final.Skew)
	}
}

func TestServicePublicSurface(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 2})
	defer svc.Close()

	b, _ := Benchmark("ispd09f22")
	b.Sinks = b.Sinks[:10]
	opts := Options{
		MaxRounds:  1,
		Cycles:     1,
		SkipStages: map[string]bool{"tbsz": true, "twsz": true, "twsn": true, "bwsn": true},
	}
	jobs, err := svc.SubmitBatch([]SynthesisRequest{{Bench: b, Opts: opts}, {Bench: b, Opts: opts}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := WaitJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0] == nil {
		t.Fatalf("results = %v", results)
	}
	// The two identical requests deduped: either coalesced onto one job,
	// or (if the first finished between the submits) served from cache.
	if jobs[0] != jobs[1] && !jobs[1].CacheHit() {
		t.Error("identical batch entries should coalesce or hit the cache")
	}
	var st ServiceStats = svc.Stats()
	if st.Submitted != 2 || st.Coalesced+st.CacheHits != 1 {
		t.Errorf("dedup accounting off: %+v", st)
	}
}

func TestSynthesizeContextPublic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := Benchmark("ispd09f22")
	if _, err := SynthesizeContext(ctx, b, Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPlanPublicSurface(t *testing.T) {
	names := PlanNames()
	if len(names) == 0 || names[0] != "paper" {
		t.Fatalf("PlanNames() = %v, want paper first", names)
	}
	for _, n := range names {
		if err := ValidatePlan(n); err != nil {
			t.Errorf("built-in plan %s invalid: %v", n, err)
		}
	}
	if err := ValidatePlan("tbsz:2,cycle(twsz,twsn)x2"); err != nil {
		t.Errorf("custom spec rejected: %v", err)
	}
	if err := ValidatePlan("cycle(twsz"); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestDurablePublicSurface(t *testing.T) {
	dir := t.TempDir()
	b, _ := Benchmark("ispd09f22")
	b.Sinks = b.Sinks[:10]
	opts := Options{
		MaxRounds:  1,
		Cycles:     1,
		SkipStages: map[string]bool{"tbsz": true, "twsz": true, "twsn": true, "bwsn": true},
	}

	svc, err := OpenService(ServiceConfig{Workers: 1, DataDir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.Submit(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// The result codec round-trips through the public surface.
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Final, res.Final) || back.Runs != res.Runs {
		t.Error("public codec round-trip drifted")
	}

	// A reopened service serves the finished job from disk.
	svc2, err := OpenService(ServiceConfig{Workers: 1, DataDir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	b2, _ := Benchmark("ispd09f22")
	b2.Sinks = b2.Sinks[:10]
	j2, err := svc2.Submit(b2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() || j2.CacheTier() != "disk" {
		t.Errorf("restart not served from disk: hit=%v tier=%q", j2.CacheHit(), j2.CacheTier())
	}
}
